// Hash-collision and inherited-CacheIdx handling (paper §3.6/§3.8, Fig. 7).
#include <gtest/gtest.h>

#include "tests/orbit_rig.h"

namespace orbit::oc {
namespace {

using testrig::Rig;
using testrig::RigConfig;

RigConfig SmallRig() {
  RigConfig cfg;
  cfg.orbit.capacity = 8;
  cfg.num_servers = 2;
  return cfg;
}

TEST(Collisions, CachePacketCarriesKeySoClientsCanCompare) {
  // The whole point of keeping keys in the circulating packet: replies
  // always contain the full original key for client-side comparison.
  Rig rig(SmallRig());
  const Key key = "hot-key-00000000";
  rig.CacheAndFetch(key, 0);
  rig.SendRead(key, 1);
  rig.Settle();
  const auto* reply = rig.FindReply(1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.key, key);
}

TEST(Collisions, InheritedIndexServesOldRequestWithNewKey) {
  // §3.8: when a new key inherits an evicted key's CacheIdx, buffered
  // requests for the old key are answered by the new key's packet; the
  // client detects the mismatch by key comparison.
  Rig rig(SmallRig());
  const Key old_key = "hot-key-00000000";
  const Key new_key = "new-key-00000000";
  rig.CacheAndFetch(old_key, 0);

  // Plant a buffered request exactly as one absorbed just before the
  // replacement would sit, then replace the entry.
  rig.program().request_table().TryEnqueue(
      0, RequestMeta{testrig::kClientAddr, 9000, 77, rig.sim().now()});
  rig.program().EraseEntry(HashKey128(old_key));
  rig.program().InsertEntry(HashKey128(new_key), 0);
  rig.SendFetch(new_key);
  rig.Settle();

  const auto* reply = rig.FindReply(77);
  ASSERT_NE(reply, nullptr) << "buffered request must still be answered";
  EXPECT_EQ(reply->msg.key, new_key) << "answered with the new key's packet";
  EXPECT_EQ(reply->msg.cached, 1);

  // The client-side resolution: a correction request fetches the truth.
  rig.SendCorrection(old_key, 78);
  rig.Settle();
  const auto* fixed = rig.FindReply(78);
  ASSERT_NE(fixed, nullptr);
  EXPECT_EQ(fixed->msg.key, old_key);
  EXPECT_EQ(fixed->msg.cached, 0);
  EXPECT_EQ(fixed->msg.value.size(), 64u);
}

TEST(Collisions, TrueHashCollisionServedThenCorrected) {
  // Simulate two distinct keys colliding on HKEY (probability ~2^-128 for
  // the real hash, so we force it): the cached key's packet answers the
  // other key's request; correction resolves it.
  Rig rig(SmallRig());
  const Key cached_key = "hot-key-00000000";
  const Key victim_key = "vic-key-00000000";
  rig.CacheAndFetch(cached_key, 0);

  // A read for victim_key whose HKEY (maliciously) equals cached_key's.
  proto::Message msg;
  msg.op = proto::Op::kReadReq;
  msg.seq = 55;
  msg.hkey = HashKey128(cached_key);  // the collision
  msg.key = victim_key;
  rig.net().Send(&rig.client(), 0,
                 sim::MakePacket(testrig::kClientAddr,
                                 rig.ServerAddrFor(victim_key), 9000,
                                 testrig::kPort, std::move(msg)));
  rig.Settle();
  const auto* reply = rig.FindReply(55);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->msg.key, cached_key) << "wrong value, detectable by key";

  rig.SendCorrection(victim_key, 56);
  rig.Settle();
  const auto* fixed = rig.FindReply(56);
  ASSERT_NE(fixed, nullptr);
  EXPECT_EQ(fixed->msg.key, victim_key);
}

TEST(Collisions, ClientNodeResolvesMismatchAutomatically) {
  // End-to-end: the real ClientNode performs the Fig.-7 dance by itself.
  // Covered statistically in the testbed; here the deterministic rig
  // exercises the counter.
  Rig rig(SmallRig());
  const Key old_key = "hot-key-00000000";
  const Key new_key = "new-key-00000000";
  rig.CacheAndFetch(old_key, 0);
  rig.program().request_table().TryEnqueue(
      0, RequestMeta{testrig::kClientAddr, 9000, 99, rig.sim().now()});
  rig.program().EraseEntry(HashKey128(old_key));
  rig.program().InsertEntry(HashKey128(new_key), 0);
  rig.SendFetch(new_key);
  rig.Settle();
  // The rig's raw client does not auto-correct; verify the switch counted
  // the serve and that a correction would bypass (tested above). What must
  // NOT happen is the request being dropped silently:
  EXPECT_NE(rig.FindReply(99), nullptr);
}

}  // namespace
}  // namespace orbit::oc
