#include "orbitcache/request_table.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/check.h"
#include "common/random.h"
#include "rmt/resources.h"

namespace orbit::oc {
namespace {

class RequestTableTest : public ::testing::Test {
 protected:
  RequestTableTest() : res_(rmt::AsicConfig{}), table_(&res_, 16, 4, 2) {}

  static RequestMeta Meta(uint32_t seq) {
    return RequestMeta{seq + 1000, static_cast<L4Port>(seq + 10), seq,
                       static_cast<SimTime>(seq) * 100};
  }

  rmt::Resources res_;
  RequestTable table_;
};

TEST_F(RequestTableTest, FifoOrderWithinKey) {
  for (uint32_t i = 0; i < 4; ++i)
    ASSERT_TRUE(table_.TryEnqueue(3, Meta(i)));
  for (uint32_t i = 0; i < 4; ++i) {
    auto meta = table_.TryDequeue(3);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->seq, i);
    EXPECT_EQ(meta->client_addr, i + 1000);
    EXPECT_EQ(meta->l4_port, i + 10);
    EXPECT_EQ(meta->enqueued_at, static_cast<SimTime>(i) * 100);
  }
  EXPECT_FALSE(table_.TryDequeue(3).has_value());
}

TEST_F(RequestTableTest, EnqueueFailsWhenFull) {
  for (uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(table_.TryEnqueue(0, Meta(i)));
  EXPECT_FALSE(table_.TryEnqueue(0, Meta(99))) << "queue depth S = 4";
  // Overflow does not corrupt the buffered metadata.
  EXPECT_EQ(table_.TryDequeue(0)->seq, 0u);
}

TEST_F(RequestTableTest, WrapAroundReusesSlots) {
  // Fig. 5's circular behaviour: pointers wrap to slot 0 after S entries.
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(table_.TryEnqueue(5, Meta(static_cast<uint32_t>(round))));
    auto meta = table_.TryDequeue(5);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->seq, static_cast<uint32_t>(round));
  }
  EXPECT_EQ(table_.QueueLength(5), 0u);
}

TEST_F(RequestTableTest, KeysAreIsolated) {
  // ReqIdx = CacheIdx * S + offset partitions the metadata arrays: filling
  // one key's queue must not affect another's.
  for (uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(table_.TryEnqueue(1, Meta(i)));
  ASSERT_TRUE(table_.TryEnqueue(2, Meta(50)));
  EXPECT_EQ(table_.QueueLength(1), 4u);
  EXPECT_EQ(table_.QueueLength(2), 1u);
  EXPECT_EQ(table_.TryDequeue(2)->seq, 50u);
  EXPECT_EQ(table_.TryDequeue(1)->seq, 0u);
}

TEST_F(RequestTableTest, AdjacentKeysShareNoSlots) {
  // Neighbouring indices use adjacent array regions; interleaved traffic
  // must never bleed across.
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(table_.TryEnqueue(7, Meta(i)));
    ASSERT_TRUE(table_.TryEnqueue(8, Meta(i + 100)));
  }
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(table_.TryDequeue(7)->seq, i);
    EXPECT_EQ(table_.TryDequeue(8)->seq, i + 100);
  }
}

TEST_F(RequestTableTest, PeekDoesNotRemove) {
  table_.TryEnqueue(0, Meta(1));
  EXPECT_EQ(table_.Peek(0)->seq, 1u);
  EXPECT_EQ(table_.Peek(0)->seq, 1u);
  EXPECT_EQ(table_.QueueLength(0), 1u);
  EXPECT_EQ(table_.TryDequeue(0)->seq, 1u);
  EXPECT_FALSE(table_.Peek(0).has_value());
}

TEST_F(RequestTableTest, ClearQueueDiscards) {
  table_.TryEnqueue(0, Meta(1));
  table_.TryEnqueue(0, Meta(2));
  table_.ClearQueue(0);
  EXPECT_EQ(table_.QueueLength(0), 0u);
  EXPECT_FALSE(table_.TryDequeue(0).has_value());
  // The queue is usable again afterwards.
  ASSERT_TRUE(table_.TryEnqueue(0, Meta(3)));
  EXPECT_EQ(table_.TryDequeue(0)->seq, 3u);
}

TEST_F(RequestTableTest, IndexBoundsChecked) {
  EXPECT_THROW(table_.TryEnqueue(16, Meta(0)), CheckFailure);
  EXPECT_THROW(table_.TryDequeue(16), CheckFailure);
  EXPECT_THROW(table_.QueueLength(16), CheckFailure);
}

TEST_F(RequestTableTest, DeclaresThreeStagesOfRegisters) {
  // The paper's layout: queue status, pointers, metadata across stages
  // first..first+2 — seven arrays total (incl. the prototype timestamp).
  EXPECT_EQ(res_.entries().size(), 7u);
  EXPECT_EQ(res_.stages_used(), 5);  // stages 2, 3, 4 occupied
}

// Property: the table behaves as C independent bounded FIFOs under a
// random interleaving, cross-checked against std::deque references.
class RequestTableFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RequestTableFuzz, MatchesReferenceDeques) {
  rmt::Resources res((rmt::AsicConfig()));
  const size_t capacity = 8, depth = 4;
  RequestTable table(&res, capacity, depth, 2);
  std::vector<std::deque<uint32_t>> ref(capacity);
  Rng rng(GetParam());
  uint32_t next_seq = 1;
  for (int op = 0; op < 50000; ++op) {
    const uint32_t idx = static_cast<uint32_t>(rng.UniformU64(capacity));
    if (rng.Bernoulli(0.55)) {
      RequestMeta meta{idx, 1, next_seq, 0};
      const bool ok = table.TryEnqueue(idx, meta);
      ASSERT_EQ(ok, ref[idx].size() < depth);
      if (ok) ref[idx].push_back(next_seq);
      ++next_seq;
    } else {
      auto meta = table.TryDequeue(idx);
      ASSERT_EQ(meta.has_value(), !ref[idx].empty());
      if (meta) {
        ASSERT_EQ(meta->seq, ref[idx].front());
        ref[idx].pop_front();
      }
    }
    ASSERT_EQ(table.QueueLength(idx), ref[idx].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestTableFuzz,
                         ::testing::Values(1, 2, 3, 42));

// Regression: ClearQueue used to reset only the ring pointers, leaving the
// trace/INT sidecars of flushed slots stale — a post-reset serve could then
// attribute its spans to a request from before the reset.
TEST_F(RequestTableTest, ClearQueueScrubsTelemetrySidecars) {
  for (uint32_t i = 0; i < 4; ++i) {
    RequestMeta meta = Meta(i);
    meta.trace_id = 0xbeef0000u + i;
    meta.int_id = 77 + i;
    ASSERT_TRUE(table_.TryEnqueue(5, meta));
  }
  table_.ClearQueue(5);
  EXPECT_EQ(table_.QueueLength(5), 0u);
  for (uint32_t off = 0; off < 4; ++off) {
    EXPECT_EQ(table_.trace_id_at(5, off), 0u) << "offset " << off;
    EXPECT_EQ(table_.int_id_at(5, off), 0u) << "offset " << off;
  }
  // A fresh unsampled request enqueued after the reset must read back
  // clean ids through the normal dequeue path.
  ASSERT_TRUE(table_.TryEnqueue(5, Meta(9)));
  auto meta = table_.TryDequeue(5);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->trace_id, 0u);
  EXPECT_EQ(meta->int_id, 0u);
}

}  // namespace
}  // namespace orbit::oc
