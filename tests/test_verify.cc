// The verification layer itself: each checker must fire on a known-bad
// scenario (otherwise a silent checker proves nothing), stay silent on
// clean full-testbed runs, and never perturb the measured results.
#include "verify/verify.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "fault/fault.h"
#include "sim/packet.h"
#include "testbed/testbed.h"

namespace orbit::verify {
namespace {

VerifyOptions Strict() {
  VerifyOptions opt;
  opt.epoch_guard = true;
  opt.write_back = false;
  return opt;
}

bool HasCheck(const Verifier& v, const std::string& check) {
  for (const auto& viol : v.violations())
    if (viol.check == check) return true;
  return false;
}

// ---- oracle: known-bad scenarios ----------------------------------------

TEST(VerifierOracle, StaleReadFlaggedUnderEpochGuard) {
  Verifier v(Strict());
  v.OnCommit("k", 64, 1);
  v.OnCommit("k", 64, 2);
  // A completed read observes v2, establishing the floor...
  v.OnClientSend(1, 10, "k", /*is_write=*/false, 0);
  v.OnClientAccept(1, 10, "k", false, false, 64, 2);
  EXPECT_TRUE(v.ok());
  // ...after which a reply carrying v1 is a forced stale read.
  v.OnClientSend(1, 11, "k", false, 0);
  v.OnClientAccept(1, 11, "k", false, false, 64, 1);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(HasCheck(v, "stale_read")) << v.Report();
}

TEST(VerifierOracle, StaleReadOnlyCountedWithGuardOff) {
  // The paper's unhardened protocol permits the stale window; the same
  // sequence must be counted, not flagged.
  VerifyOptions opt = Strict();
  opt.epoch_guard = false;
  Verifier v(opt);
  v.OnCommit("k", 64, 1);
  v.OnCommit("k", 64, 2);
  v.OnClientSend(1, 10, "k", false, 0);
  v.OnClientAccept(1, 10, "k", false, false, 64, 2);
  v.OnClientSend(1, 11, "k", false, 0);
  v.OnClientAccept(1, 11, "k", false, false, 64, 1);
  EXPECT_TRUE(v.ok()) << v.Report();
  EXPECT_EQ(v.allowed_stale(), 1u);
}

TEST(VerifierOracle, FutureVersionAlwaysFlagged) {
  // Every version authority is hooked, so a version nobody minted is a
  // wiring bug or corruption even in the relaxed modes.
  VerifyOptions opt = Strict();
  opt.write_back = true;
  Verifier v(opt);
  v.OnCommit("k", 64, 1);
  v.OnClientSend(1, 1, "k", false, 0);
  v.OnClientAccept(1, 1, "k", false, false, 64, 7);
  EXPECT_TRUE(HasCheck(v, "future_version")) << v.Report();
}

TEST(VerifierOracle, SizeMismatchFlagged) {
  Verifier v(Strict());
  v.OnCommit("k", 64, 1);
  v.OnClientSend(1, 1, "k", false, 0);
  v.OnClientAccept(1, 1, "k", false, false, 100, 1);
  EXPECT_TRUE(HasCheck(v, "size_mismatch")) << v.Report();
}

TEST(VerifierOracle, KeyMismatchFlagged) {
  Verifier v(Strict());
  v.OnClientSend(1, 1, "a", false, 0);
  v.OnClientAccept(1, 1, "b", false, false, 64, 0);
  EXPECT_TRUE(HasCheck(v, "key_mismatch")) << v.Report();
}

TEST(VerifierOracle, AcceptWithoutSendFlagged) {
  Verifier v(Strict());
  v.OnClientAccept(1, 99, "k", false, false, 64, 0);
  EXPECT_TRUE(HasCheck(v, "unknown_accept")) << v.Report();
}

TEST(VerifierOracle, DroppedRequestIsNotChecked) {
  Verifier v(Strict());
  v.OnClientSend(1, 1, "k", false, 0);
  v.OnClientDrop(1, 1);
  // The later duplicate reply was already retired; nothing to check.
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.replies_checked(), 0u);
}

// ---- packet conservation: known-bad scenarios ---------------------------

TEST(VerifierPackets, SilentDropFlagged) {
  Verifier v(Strict());
  v.ArmPacketAccounting();
  sim::Packet pkt;  // never MarkEnd'ed: released without a terminal state
  v.OnRelease(pkt);
  EXPECT_TRUE(HasCheck(v, "silent_drop")) << v.Report();
}

TEST(VerifierPackets, MarkedReleaseIsClean) {
  Verifier v(Strict());
  v.ArmPacketAccounting();
  sim::Packet pkt;
  sim::MarkEnd(pkt, sim::PacketEnd::kConsumed);
  v.OnRelease(pkt);
  EXPECT_TRUE(v.ok()) << v.Report();
}

TEST(VerifierPackets, LeakFlaggedAtFinalize) {
  Verifier v(Strict());
  Verifier::EndOfRun eor;
  eor.pool_acquired = 10;
  eor.pool_released = 8;
  eor.expected_live = 1;  // one legitimate in-flight packet; one leaked
  v.Finalize(eor);
  EXPECT_TRUE(HasCheck(v, "packet_leak")) << v.Report();
}

TEST(VerifierPackets, BalancedPoolIsClean) {
  Verifier v(Strict());
  Verifier::EndOfRun eor;
  eor.pool_acquired = 10;
  eor.pool_released = 8;
  eor.expected_live = 2;
  v.Finalize(eor);
  EXPECT_TRUE(v.ok()) << v.Report();
}

// ---- switch invariants: known-bad scenarios -----------------------------

TEST(VerifierSwitch, OverCapacityQueueFlagged) {
  Verifier v(Strict());
  // qlen exceeding the ring size is exactly what a broken enqueue guard
  // would produce.
  v.OnQueueState("TryEnqueue", 3, /*qlen=*/9, /*front=*/0, /*rear=*/1,
                 /*queue_size=*/8);
  EXPECT_TRUE(HasCheck(v, "request_table_ring")) << v.Report();
}

TEST(VerifierSwitch, InconsistentRingPointersFlagged) {
  Verifier v(Strict());
  // rear must equal (front + qlen) mod size.
  v.OnQueueState("TryDequeue", 0, /*qlen=*/2, /*front=*/1, /*rear=*/1,
                 /*queue_size=*/8);
  EXPECT_TRUE(HasCheck(v, "request_table_ring")) << v.Report();
}

TEST(VerifierSwitch, ConsistentRingIsClean) {
  Verifier v(Strict());
  v.OnQueueState("TryEnqueue", 0, 3, 6, 1, 8);  // (6 + 3) % 8 == 1
  EXPECT_TRUE(v.ok()) << v.Report();
}

TEST(VerifierSwitch, OrbitCensusMismatchFlagged) {
  Verifier v(Strict());
  Verifier::EndOfRun eor;
  eor.recirc_in_flight = 5;
  eor.valid_entries = 3;
  v.Finalize(eor);
  EXPECT_TRUE(HasCheck(v, "orbit_census")) << v.Report();
}

TEST(VerifierSwitch, OrbitCensusSkipIsClean) {
  Verifier v(Strict());
  Verifier::EndOfRun eor;
  eor.recirc_in_flight = 5;
  eor.valid_entries = -1;
  eor.orbit_skip_reason = "write-back forks flush copies";
  v.Finalize(eor);
  EXPECT_TRUE(v.ok()) << v.Report();
}

TEST(Verifier, ReportListsViolationsDeterministically) {
  Verifier v(Strict());
  v.AddViolation("example", "detail text");
  const std::string report = v.Report();
  EXPECT_NE(report.find("example"), std::string::npos);
  EXPECT_NE(report.find("detail text"), std::string::npos);
  EXPECT_EQ(report, v.Report());
}

// ---- full-testbed integration -------------------------------------------

testbed::TestbedConfig SmallConfig(testbed::Scheme scheme) {
  testbed::TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.topo.num_clients = 2;
  cfg.topo.num_servers = 8;
  cfg.topo.server_rate_rps = 20'000;
  cfg.topo.client_rate_rps = 400'000;
  cfg.workload.num_keys = 100'000;
  cfg.workload.zipf_theta = 0.99;
  cfg.cache.orbit_cache_size = 32;
  cfg.cache.orbit_capacity = 128;
  cfg.cache.netcache_size = 1000;
  cfg.warmup = 20 * kMillisecond;
  cfg.duration = 80 * kMillisecond;
  cfg.seed = 7;
  cfg.verify.enabled = true;
  return cfg;
}

TEST(VerifyTestbed, OrbitCacheCleanRun) {
  testbed::TestbedResult res =
      testbed::RunTestbed(SmallConfig(testbed::Scheme::kOrbitCache));
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
  EXPECT_GT(res.verify_replies_checked, 0u);
}

TEST(VerifyTestbed, NetCacheCleanRun) {
  testbed::TestbedResult res =
      testbed::RunTestbed(SmallConfig(testbed::Scheme::kNetCache));
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
  EXPECT_GT(res.verify_replies_checked, 0u);
}

TEST(VerifyTestbed, NoCacheCleanRun) {
  testbed::TestbedResult res =
      testbed::RunTestbed(SmallConfig(testbed::Scheme::kNoCache));
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
  EXPECT_GT(res.verify_replies_checked, 0u);
}

TEST(VerifyTestbed, CleanUnderWritesAndRetries) {
  testbed::TestbedConfig cfg = SmallConfig(testbed::Scheme::kOrbitCache);
  cfg.workload.write_ratio = 0.2;
  cfg.client.max_retries = 2;
  testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
}

TEST(VerifyTestbed, CleanUnderSwitchResetAndCrash) {
  testbed::TestbedConfig cfg = SmallConfig(testbed::Scheme::kOrbitCache);
  cfg.fault = fault::SwitchResetAt(40 * kMillisecond);
  cfg.fault.events.push_back(
      {60 * kMillisecond, fault::FaultKind::kServerCrash, 0});
  cfg.fault.events.push_back(
      {80 * kMillisecond, fault::FaultKind::kServerRestart, 0});
  cfg.client.max_retries = 2;
  testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
}

TEST(VerifyTestbed, ResultsNeutral) {
  // The whole point of the layer: enabling it must not move a single
  // measured number.
  testbed::TestbedConfig off = SmallConfig(testbed::Scheme::kOrbitCache);
  off.verify.enabled = false;
  testbed::TestbedConfig on = SmallConfig(testbed::Scheme::kOrbitCache);
  const testbed::TestbedResult a = testbed::RunTestbed(off);
  const testbed::TestbedResult b = testbed::RunTestbed(on);
  EXPECT_EQ(a.rx_rps, b.rx_rps);
  EXPECT_EQ(a.tx_rps, b.tx_rps);
  EXPECT_EQ(a.cache_served_rps, b.cache_served_rps);
  EXPECT_EQ(a.lookup_hits, b.lookup_hits);
  EXPECT_EQ(a.absorbed, b.absorbed);
  EXPECT_EQ(a.cache_packets_in_flight, b.cache_packets_in_flight);
  EXPECT_EQ(a.stale_reads, b.stale_reads);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.server_loads, b.server_loads);
  // And only the instrumented run carries a verification outcome.
  EXPECT_EQ(a.verify_replies_checked, 0u);
  EXPECT_GT(b.verify_replies_checked, 0u);
}

TEST(VerifyTestbed, AcceptedAndCleanOnFabricTopology) {
  // The oracle follows traffic across the leaf-spine fabric too: replies
  // are checked and a healthy multi-rack run stays violation-free.
  testbed::TestbedConfig cfg = SmallConfig(testbed::Scheme::kOrbitCache);
  cfg.topo.fabric.num_racks = 2;
  cfg.topo.fabric.num_spines = 2;
  cfg.warmup = 5 * kMillisecond;
  cfg.duration = 30 * kMillisecond;
  EXPECT_TRUE(cfg.Validate().empty());
  testbed::TestbedResult res = testbed::RunTestbed(cfg);
  EXPECT_EQ(res.verify_violations, 0u) << res.verify_report;
  EXPECT_GT(res.verify_replies_checked, 0u);
}

}  // namespace
}  // namespace orbit::verify
