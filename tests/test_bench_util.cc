// The figure harnesses promise the paper's §5.1 methodology; pin the
// shared configuration to the paper's constants so a drive-by edit can't
// silently change what the benches measure.
#include "bench/bench_util.h"

#include <gtest/gtest.h>

namespace orbit::benchutil {
namespace {

TEST(PaperConfig, MatchesSection51) {
  Mode full;
  full.full = true;
  const testbed::TestbedConfig cfg = PaperConfig(full);
  EXPECT_EQ(cfg.topo.num_clients, 4);              // 4 client nodes
  EXPECT_EQ(cfg.topo.num_servers, 32);             // 4 nodes x 8 emulated servers
  EXPECT_DOUBLE_EQ(cfg.topo.server_rate_rps, 100'000);  // Rx limit per server
  EXPECT_EQ(cfg.workload.num_keys, 10'000'000u);       // 10M key-value pairs
  EXPECT_DOUBLE_EQ(cfg.workload.zipf_theta, 0.99);     // typical skewness
  EXPECT_EQ(cfg.workload.key_size, 16u);               // 16B keys "for simplicity"
  EXPECT_EQ(cfg.cache.orbit_cache_size, 128u);      // near-optimal cache size
  EXPECT_EQ(cfg.cache.netcache_size, 10'000u);      // 10K hottest preloaded
  // 82% 64B / 18% 1024B bimodal values (Cluster018-derived).
  EXPECT_EQ(cfg.workload.value_dist.min_size(), 64u);
  EXPECT_EQ(cfg.workload.value_dist.max_size(), 1024u);
  EXPECT_NEAR(cfg.workload.value_dist.mean_size(), 0.82 * 64 + 0.18 * 1024, 1e-9);
}

TEST(PaperConfig, QuickModeOnlyShrinksScale) {
  Mode quick;
  const testbed::TestbedConfig q = PaperConfig(quick);
  Mode full;
  full.full = true;
  const testbed::TestbedConfig f = PaperConfig(full);
  // Quick mode may shrink the key space and windows but must not alter
  // the comparison-relevant knobs.
  EXPECT_LT(q.workload.num_keys, f.workload.num_keys);
  EXPECT_LE(q.duration, f.duration);
  EXPECT_EQ(q.topo.num_servers, f.topo.num_servers);
  EXPECT_EQ(q.cache.orbit_cache_size, f.cache.orbit_cache_size);
  EXPECT_EQ(q.cache.netcache_size, f.cache.netcache_size);
  EXPECT_DOUBLE_EQ(q.workload.zipf_theta, f.workload.zipf_theta);
  EXPECT_EQ(q.seed, f.seed);
}

TEST(ParseArgs, RecognizesFullFlag) {
  const char* argv1[] = {"bench"};
  EXPECT_FALSE(ParseArgs(1, const_cast<char**>(argv1)).full);
  const char* argv2[] = {"bench", "--full"};
  EXPECT_TRUE(ParseArgs(2, const_cast<char**>(argv2)).full);
}

TEST(ParseArgs, RecognizesQuickFlag) {
  const char* argv[] = {"bench", "--quick"};
  const Mode mode = ParseArgs(2, const_cast<char**>(argv));
  EXPECT_TRUE(mode.quick);
  EXPECT_EQ(mode.scale(), harness::Scale::kQuick);
}

// The three scales are ordered; full is the §5.1 paper scale; PaperConfig
// is a pure delegate of the single ScaleProfile source of truth.
TEST(ScaleProfile, OrderedAndDelegated) {
  const harness::ScaleProfile q =
      harness::PaperScaleProfile(harness::Scale::kQuick);
  const harness::ScaleProfile d =
      harness::PaperScaleProfile(harness::Scale::kDefault);
  const harness::ScaleProfile f =
      harness::PaperScaleProfile(harness::Scale::kFull);
  EXPECT_LT(q.num_keys, d.num_keys);
  EXPECT_LT(d.num_keys, f.num_keys);
  EXPECT_LT(q.duration, d.duration);
  EXPECT_LT(d.duration, f.duration);
  EXPECT_EQ(f.num_keys, 10'000'000u);

  Mode full;
  full.full = true;
  EXPECT_EQ(PaperConfig(full).workload.num_keys, f.num_keys);
  EXPECT_EQ(PaperConfig(full).duration, f.duration);
  EXPECT_EQ(PaperConfig(Mode{}).workload.num_keys, d.num_keys);
}

}  // namespace
}  // namespace orbit::benchutil
