// harness::Flags — the one flag parser behind run_all, microbench, and the
// tools. Parsing rules must match the historical hand-rolled loops, and
// Usage() must reflect every registration so --help cannot go stale.
#include "harness/flags.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace orbit::harness {
namespace {

Flags TypicalFlags() {
  Flags flags;
  flags.AddBool("quick", "smoke scale");
  flags.AddBool("full", "paper scale");
  flags.AddInt("jobs", 1, "N", "parallel sweep points");
  flags.AddUint64("seed", 42, "N", "base seed");
  flags.AddDouble("timeout", 0, "SEC", "per-point budget");
  flags.AddString("out", "", "PATH", "results file");
  flags.AddBool("help", "this message").Alias("-h");
  return flags;
}

// Builds a mutable argv from string literals (Parse takes char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(Flags, DefaultsWhenUnset) {
  Flags flags = TypicalFlags();
  Argv args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_FALSE(flags.GetBool("quick"));
  EXPECT_EQ(flags.GetInt("jobs"), 1);
  EXPECT_EQ(flags.GetUint64("seed"), 42u);
  EXPECT_EQ(flags.GetDouble("timeout"), 0.0);
  EXPECT_EQ(flags.GetString("out"), "");
  EXPECT_FALSE(flags.Seen("jobs"));
}

TEST(Flags, ParsesEveryType) {
  Flags flags = TypicalFlags();
  Argv args({"--quick", "--jobs", "8", "--seed", "7", "--timeout", "2.5",
             "--out", "r.jsonl"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(flags.GetBool("quick"));
  EXPECT_EQ(flags.GetInt("jobs"), 8);
  EXPECT_EQ(flags.GetUint64("seed"), 7u);
  EXPECT_EQ(flags.GetDouble("timeout"), 2.5);
  EXPECT_EQ(flags.GetString("out"), "r.jsonl");
  EXPECT_TRUE(flags.Seen("jobs"));
}

TEST(Flags, PositionalsCollectInOrder) {
  Flags flags = TypicalFlags();
  Argv args({"fig09", "--jobs", "2", "fig12"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.positionals(),
            (std::vector<std::string>{"fig09", "fig12"}));
}

TEST(Flags, UnknownFlagFails) {
  Flags flags = TypicalFlags();
  Argv args({"--bogus"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.error(), "unknown flag: --bogus");
}

TEST(Flags, UnknownFlagSuggestsTheNearestName) {
  Flags flags = TypicalFlags();
  Argv args({"--sede", "9"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.error(), "unknown flag: --sede (did you mean --seed?)");
}

TEST(Flags, UnknownFlagSuggestionCoversLongerTyposAndAliases) {
  Flags flags;
  flags.AddString("trace-out", "", "PATH", "trace file");
  flags.AddBool("help", "this message").Alias("-h");
  {
    Argv args({"--trase-out", "t.json"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.error(),
              "unknown flag: --trase-out (did you mean --trace-out?)");
  }
  {
    // Aliases are candidate spellings too.
    Argv args({"-j"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.error(), "unknown flag: -j (did you mean -h?)");
  }
}

TEST(Flags, UnknownFlagFarFromEverythingGetsNoSuggestion) {
  Flags flags = TypicalFlags();
  Argv args({"--frobnicate"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.error(), "unknown flag: --frobnicate");
}

TEST(Flags, MissingValueFails) {
  Flags flags = TypicalFlags();
  Argv args({"--jobs"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.error(), "--jobs requires a value");
}

TEST(Flags, MalformedValueFailsWithRawText) {
  Flags flags = TypicalFlags();
  Argv args({"--jobs", "many"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.error(), "bad --jobs value: many");
}

TEST(Flags, RawPreservesUnparsedText) {
  // Callers with extra range checks ("--jobs 0") report the user's exact
  // spelling via Raw().
  Flags flags = TypicalFlags();
  Argv args({"--jobs", "0"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("jobs"), 0);
  EXPECT_EQ(flags.Raw("jobs"), "0");
}

TEST(Flags, AliasMatchesAlternateSpelling) {
  Flags flags = TypicalFlags();
  Argv args({"-h"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(flags.GetBool("help"));
}

TEST(Flags, LastIndexResolvesMutuallyExclusivePairs) {
  // --quick --full --quick: the harness picks whichever appeared last.
  Flags flags = TypicalFlags();
  Argv args({"--quick", "--full", "--quick"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_GT(flags.LastIndex("quick"), flags.LastIndex("full"));
  EXPECT_EQ(flags.LastIndex("seed"), -1);
}

TEST(Flags, RepeatedValueFlagLastWins) {
  Flags flags = TypicalFlags();
  Argv args({"--jobs", "2", "--jobs", "4"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("jobs"), 4);
  EXPECT_EQ(flags.Raw("jobs"), "4");
}

TEST(Flags, TypeMismatchIsACheckedError) {
  Flags flags = TypicalFlags();
  Argv args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_THROW(flags.GetInt("quick"), CheckFailure);       // bool as int
  EXPECT_THROW(flags.GetBool("nonexistent"), CheckFailure);
}

TEST(Flags, UsageListsEveryRegistration) {
  const std::string usage = TypicalFlags().Usage();
  for (const char* needle :
       {"--quick", "--jobs N", "--seed N", "--timeout SEC", "--out PATH",
        "parallel sweep points", "base seed"})
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace orbit::harness
