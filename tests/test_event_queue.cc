#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "sim/node.h"

namespace orbit::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.PushCallback(30, [&] { order.push_back(3); });
  q.PushCallback(10, [&] { order.push_back(1); });
  q.PushCallback(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) q.PushCallback(5, [&, i] { order.push_back(i); });
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, HeapPropertyUnderRandomLoad) {
  EventQueue q;
  Rng rng(3);
  // Interleave pushes and pops; popped times must be non-decreasing among
  // a monotonically consistent schedule.
  SimTime last = -1;
  int pushed = 0, popped = 0;
  while (popped < 5000) {
    if (pushed < 5000 && (q.empty() || rng.Bernoulli(0.6))) {
      // Never schedule into the past relative to what we've popped.
      q.PushCallback(last + 1 + static_cast<SimTime>(rng.UniformU64(1000)),
                     [] {});
      ++pushed;
    } else {
      Event e = q.Pop();
      EXPECT_GE(e.time, last);
      last = e.time;
      ++popped;
    }
  }
}

TEST(EventQueue, DeliveryEventsCarryPayload) {
  struct Probe : Node {
    void OnPacket(PacketPtr pkt, int port) override {
      last_port = port;
      last_key = pkt->msg.key;
    }
    std::string name() const override { return "probe"; }
    int last_port = -1;
    Key last_key;
  } probe;

  EventQueue q;
  auto pkt = std::make_unique<Packet>();
  pkt->msg.key = "k";
  q.PushDelivery(5, &probe, 3, std::move(pkt));
  Event e = q.Pop();
  ASSERT_NE(e.node, nullptr);
  e.node->OnPacket(std::move(e.pkt), e.port);
  EXPECT_EQ(probe.last_port, 3);
  EXPECT_EQ(probe.last_key, "k");
}

TEST(EventQueue, SizeTracksPushesAndPops) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.PushCallback(1, [] {});
  q.PushCallback(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  q.PushCallback(42, [] {});
  q.PushCallback(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
}

}  // namespace
}  // namespace orbit::sim
