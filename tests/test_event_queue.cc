#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "sim/node.h"

namespace orbit::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.PushCallback(30, [&] { order.push_back(3); });
  q.PushCallback(10, [&] { order.push_back(1); });
  q.PushCallback(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) q.PushCallback(5, [&, i] { order.push_back(i); });
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EqualTimesKeepInsertionOrderAcrossBuckets) {
  // Same-time pushes separated by pushes at other timestamps land in
  // *different* FIFO buckets (the open-bucket cache moves on). The heap's
  // (time, bucket-creation) order must still replay them in insertion
  // order — this is the cross-bucket half of the determinism guarantee.
  EventQueue q;
  std::vector<int> order;
  q.PushCallback(5, [&] { order.push_back(50); });
  q.PushCallback(3, [&] { order.push_back(30); });  // breaks the t=5 run
  q.PushCallback(5, [&] { order.push_back(51); });
  q.PushCallback(1, [&] { order.push_back(10); });
  q.PushCallback(5, [&] { order.push_back(52); });
  q.PushCallback(3, [&] { order.push_back(31); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{10, 30, 31, 50, 51, 52}));
}

TEST(EventQueue, InterleavedEqualTimesStayFifoUnderRandomLoad) {
  // Randomized version: many pushes over a handful of timestamps, drained
  // with interleaved pops. Within every timestamp the pop order must equal
  // the push order regardless of how buckets were split and recycled.
  EventQueue q;
  Rng rng(17);
  std::vector<std::vector<int>> pushed(8), popped(8);
  int next_id = 0, to_pop = 0;
  for (int round = 0; round < 4000; ++round) {
    if (to_pop < 4000 && (q.empty() || rng.Bernoulli(0.55))) {
      const auto t = static_cast<SimTime>(100 + rng.UniformU64(8));
      const int id = next_id++;
      pushed[static_cast<size_t>(t - 100)].push_back(id);
      q.PushCallback(t, [&popped, t, id] {
        popped[static_cast<size_t>(t - 100)].push_back(id);
      });
    } else if (!q.empty()) {
      q.Pop().fn();
      ++to_pop;
    }
  }
  while (!q.empty()) q.Pop().fn();
  for (size_t t = 0; t < pushed.size(); ++t)
    EXPECT_EQ(popped[t], pushed[t]) << "FIFO broken at timestamp " << t;
}

TEST(EventQueue, EmptyQueueAccessorsAreCheckedPreconditions) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), CheckFailure);
  EXPECT_THROW(q.Pop(), CheckFailure);
  // Still usable after the failed calls.
  q.PushCallback(1, [] {});
  EXPECT_EQ(q.next_time(), 1);
  q.Pop();
  EXPECT_THROW(q.Pop(), CheckFailure);
}

TEST(EventQueue, HeapPropertyUnderRandomLoad) {
  EventQueue q;
  Rng rng(3);
  // Interleave pushes and pops; popped times must be non-decreasing among
  // a monotonically consistent schedule.
  SimTime last = -1;
  int pushed = 0, popped = 0;
  while (popped < 5000) {
    if (pushed < 5000 && (q.empty() || rng.Bernoulli(0.6))) {
      // Never schedule into the past relative to what we've popped.
      q.PushCallback(last + 1 + static_cast<SimTime>(rng.UniformU64(1000)),
                     [] {});
      ++pushed;
    } else {
      Event e = q.Pop();
      EXPECT_GE(e.time, last);
      last = e.time;
      ++popped;
    }
  }
}

TEST(EventQueue, DeliveryEventsCarryPayload) {
  struct Probe : Node {
    void OnPacket(PacketPtr pkt, int port) override {
      last_port = port;
      last_key = pkt->msg.key;
    }
    std::string name() const override { return "probe"; }
    int last_port = -1;
    Key last_key;
  } probe;

  EventQueue q;
  auto pkt = NewPacket(0, 0, 0, 0);
  pkt->msg.key = "k";
  q.PushDelivery(5, &probe, 3, std::move(pkt));
  Event e = q.Pop();
  ASSERT_NE(e.node, nullptr);
  e.node->OnPacket(std::move(e.pkt), e.port);
  EXPECT_EQ(probe.last_port, 3);
  EXPECT_EQ(probe.last_key, "k");
}

TEST(EventQueue, SizeTracksPushesAndPops) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.PushCallback(1, [] {});
  q.PushCallback(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  q.PushCallback(42, [] {});
  q.PushCallback(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
}

}  // namespace
}  // namespace orbit::sim
