// Diff two JSONL result files produced by the bench harness (--out).
//
//   bench_compare a.jsonl b.jsonl [--tolerance F] [--slack F]
//                 [--metrics m1,m2,...] [--all-metrics]
//   bench_compare --counters a.jsonl b.jsonl [--tolerance F] [--slack F]
//
// Records are matched by experiment + swept-parameter labels + rep; each
// selected metric is compared with a relative tolerance plus an absolute
// slack floor (small absolute wobble on a near-zero metric is not drift).
// With --counters the inputs are counter-snapshot JSONL files (from
// --counters-out); snapshots match on (experiment, point, rep, t_ns) and
// every counter/gauge is compared under the same tolerance rules.
// Exit 0: match within tolerance. Exit 1: drift, missing records,
// one-sided metric loss, or asymmetric failures. Exit 2: usage,
// unreadable input, or nothing comparable (no selected metric present
// in both files — a gate that compares nothing must not pass).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/compare.h"
#include "harness/flags.h"
#include "harness/metrics.h"
#include "harness/telemetry_io.h"

namespace {

orbit::harness::Flags MakeFlags() {
  orbit::harness::Flags flags;
  flags.AddDouble("tolerance", 0.05, "F",
                  "relative tolerance, default 0.05 (5%)");
  flags.AddDouble("slack", 0.02, "F",
                  "absolute difference always allowed, default 0.02");
  flags.AddString("metrics", "", "LIST",
                  "comma-separated metric names (dotted paths ok)");
  flags.AddBool("all-metrics", "compare every numeric top-level metric");
  flags.AddBool("counters",
                "inputs are counter-snapshot JSONL (--counters-out)");
  flags.AddBool("help", "this message").Alias("-h");
  return flags;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s A.jsonl B.jsonl [--tolerance F] [--slack F]\n"
      "          [--metrics m1,m2,...] [--all-metrics]\n"
      "       %s --counters A.jsonl B.jsonl [--tolerance F] [--slack F]\n"
      "%s",
      prog, prog, MakeFlags().Usage().c_str());
}

std::string SnapshotKey(const orbit::harness::JsonValue& line) {
  using orbit::harness::JsonValue;
  std::string key;
  if (const JsonValue* v = line.Find("experiment")) key += v->AsString();
  for (const char* field : {"point", "rep", "t_ns"}) {
    key += '|';
    if (const JsonValue* v = line.Find(field))
      key += std::to_string(v->AsInt());
  }
  return key;
}

// Compares two counter-snapshot files under the harness tolerance rules.
int CompareCounterFiles(const std::string& path_a, const std::string& path_b,
                        const orbit::harness::CompareOptions& options) {
  using orbit::harness::JsonValue;
  std::vector<JsonValue> a, b;
  const auto load = [](const std::string& path, std::vector<JsonValue>* out) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return false;
    }
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    std::string error;
    if (!orbit::harness::ParseCountersJsonl(text, out, &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    if (out->empty()) {
      std::fprintf(stderr,
                   "%s: no counter snapshots — empty or truncated JSONL? "
                   "(produce it with --counters-out)\n",
                   path.c_str());
      return false;
    }
    return true;
  };
  if (!load(path_a, &a) || !load(path_b, &b)) return 2;

  std::map<std::string, const JsonValue*> index_b;
  for (const auto& line : b) index_b[SnapshotKey(line)] = &line;

  size_t matched = 0, compared = 0, missing = 0, drifted = 0;
  for (const auto& line : a) {
    const std::string key = SnapshotKey(line);
    const auto it = index_b.find(key);
    if (it == index_b.end()) {
      std::printf("only in A: %s\n", key.c_str());
      ++missing;
      continue;
    }
    ++matched;
    for (const char* section : {"counters", "gauges"}) {
      const JsonValue* sa = line.Find(section);
      const JsonValue* sb = it->second->Find(section);
      if (sa == nullptr || sb == nullptr || !sa->is_object() ||
          !sb->is_object())
        continue;
      for (const auto& [name, va] : sa->object()) {
        const JsonValue* vb = sb->Find(name);
        ++compared;
        if (vb == nullptr) {
          std::printf("%s %s: missing from B\n", key.c_str(), name.c_str());
          ++drifted;
          continue;
        }
        const double x = va.AsDouble(), y = vb->AsDouble();
        const double diff = std::fabs(x - y);
        const double rel = diff / std::max({std::fabs(x), std::fabs(y), 1e-12});
        if (diff > options.slack && rel > options.tolerance) {
          std::printf("%s %s: %.0f vs %.0f (rel %.1f%%)\n", key.c_str(),
                      name.c_str(), x, y, rel * 100);
          ++drifted;
        }
      }
    }
    index_b.erase(it);
  }
  for (const auto& [key, line] : index_b) {
    (void)line;
    std::printf("only in B: %s\n", key.c_str());
    ++missing;
  }
  std::printf("%zu snapshots matched, %zu values compared, %zu drifted, "
              "%zu unmatched\n",
              matched, compared, drifted, missing);
  return drifted == 0 && missing == 0 ? 0 : 1;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  orbit::harness::Flags flags = MakeFlags();
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], flags.error().c_str());
    Usage(argv[0]);
    return 2;
  }
  if (flags.GetBool("help")) {
    Usage(argv[0]);
    return 0;
  }
  orbit::harness::CompareOptions options;
  options.tolerance = flags.GetDouble("tolerance");
  options.slack = flags.GetDouble("slack");
  options.metrics = SplitCsv(flags.GetString("metrics"));
  options.all_metrics = flags.GetBool("all-metrics");
  const std::vector<std::string>& paths = flags.positionals();
  if (paths.size() != 2) {
    Usage(argv[0]);
    return 2;
  }
  if (flags.GetBool("counters"))
    return CompareCounterFiles(paths[0], paths[1], options);

  std::string error;
  std::vector<orbit::harness::MetricsRecord> a, b;
  if (!orbit::harness::ReadJsonlFile(paths[0], &a, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[0].c_str(), error.c_str());
    return 2;
  }
  if (!orbit::harness::ReadJsonlFile(paths[1], &b, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[1].c_str(), error.c_str());
    return 2;
  }
  // An empty side would "compare" vacuously; make the likely cause —
  // a truncated or never-written --out file — explicit instead.
  if (a.empty() || b.empty()) {
    std::fprintf(stderr,
                 "%s: no metrics records — empty or truncated JSONL? "
                 "(produce it with --out)\n",
                 (a.empty() ? paths[0] : paths[1]).c_str());
    return 2;
  }

  const auto report = orbit::harness::CompareResults(a, b, options);
  std::fputs(orbit::harness::FormatReport(report, options).c_str(), stdout);
  // Comparing nothing is a usage error (typo'd --metrics, wrong files),
  // not a drift verdict — exit 2 like the other "can't compare" cases.
  if (report.vacuous()) {
    std::fprintf(stderr,
                 "no comparable metrics: none of the selected metric names "
                 "appear in both files (see --metrics / --all-metrics)\n");
    return 2;
  }
  return report.ok() ? 0 : 1;
}
