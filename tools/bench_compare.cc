// Diff two JSONL result files produced by the bench harness (--out).
//
//   bench_compare a.jsonl b.jsonl [--tolerance F] [--slack F]
//                 [--metrics m1,m2,...] [--all-metrics]
//
// Records are matched by experiment + swept-parameter labels + rep; each
// selected metric is compared with a relative tolerance plus an absolute
// slack floor (small absolute wobble on a near-zero metric is not drift).
// Exit 0: match within tolerance. Exit 1: drift, missing records, or
// asymmetric failures. Exit 2: usage / unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/compare.h"
#include "harness/metrics.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s A.jsonl B.jsonl [--tolerance F] [--slack F]\n"
      "          [--metrics m1,m2,...] [--all-metrics]\n"
      "  --tolerance F   relative tolerance, default 0.05 (5%%)\n"
      "  --slack F       absolute difference always allowed, default 0.02\n"
      "  --metrics LIST  comma-separated metric names (dotted paths ok)\n"
      "  --all-metrics   compare every numeric top-level metric\n",
      prog);
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  orbit::harness::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      options.tolerance = std::atof(value("--tolerance"));
    } else if (arg == "--slack") {
      options.slack = std::atof(value("--slack"));
    } else if (arg == "--metrics") {
      options.metrics = SplitCsv(value("--metrics"));
    } else if (arg == "--all-metrics") {
      options.all_metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    Usage(argv[0]);
    return 2;
  }

  std::string error;
  std::vector<orbit::harness::MetricsRecord> a, b;
  if (!orbit::harness::ReadJsonlFile(paths[0], &a, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[0].c_str(), error.c_str());
    return 2;
  }
  if (!orbit::harness::ReadJsonlFile(paths[1], &b, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[1].c_str(), error.c_str());
    return 2;
  }

  const auto report = orbit::harness::CompareResults(a, b, options);
  std::fputs(orbit::harness::FormatReport(report, options).c_str(), stdout);
  return report.ok() ? 0 : 1;
}
