// Aggregate a Chrome trace produced by --trace-out into per-hop latency
// breakdown tables.
//
//   trace_summary trace.json
//
// For every process in the trace (one per experiment point) the tool
// groups complete ("X") events by trace id, sums durations per hop name,
// and prints the min/mean/max table FormatHopBreakdown renders — the
// text form of what Perfetto shows graphically. Exit 0 on success, 2 on
// unreadable or malformed input.
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "harness/json.h"
#include "telemetry/export.h"
#include "telemetry/trace.h"

namespace {

using orbit::harness::JsonValue;
using orbit::SimTime;

// "12.345" µs (exact three-decimal form the exporter prints) → 12345 ns.
SimTime MicrosToNs(const JsonValue& v) {
  return static_cast<SimTime>(std::llround(v.AsDouble() * 1000.0));
}

struct ProcessAgg {
  std::string label;
  // Insertion-ordered per-request summaries, keyed by trace id.
  std::vector<orbit::telemetry::RequestSummary> summaries;
  std::map<uint64_t, size_t> index;
  uint64_t events = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help") {
    std::fprintf(stderr, "usage: %s trace.json\n", argv[0]);
    return 2;
  }

  std::FILE* f = std::fopen(argv[1], "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 2;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
    std::fprintf(stderr,
                 "%s: empty file — truncated or never-written trace? "
                 "(produce it with --trace-out)\n",
                 argv[1]);
    return 2;
  }

  JsonValue doc;
  std::string error;
  if (!orbit::harness::ParseJson(text, &doc, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[1], error.c_str());
    return 2;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array\n", argv[1]);
    return 2;
  }

  // Keeps split name/detail strings alive: RequestSummary stores const
  // char* (the in-simulator path records string literals; here the parsed
  // document plays that role).
  std::deque<std::string> strings;
  auto intern = [&strings](const std::string& s) {
    strings.push_back(s);
    return strings.back().c_str();
  };

  std::map<int64_t, ProcessAgg> processes;
  for (const JsonValue& ev : events->array()) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* pid = ev.Find("pid");
    const JsonValue* name = ev.Find("name");
    if (ph == nullptr || pid == nullptr || name == nullptr) continue;
    ProcessAgg& proc = processes[pid->AsInt()];

    if (ph->AsString() == "M") {
      if (name->AsString() == "process_name")
        if (const JsonValue* args = ev.Find("args"))
          if (const JsonValue* label = args->Find("name"))
            proc.label = label->AsString();
      continue;
    }
    ++proc.events;
    if (ph->AsString() != "X") continue;  // only spans carry duration
    const JsonValue* dur = ev.Find("dur");
    const JsonValue* args = ev.Find("args");
    const JsonValue* tid = args != nullptr ? args->Find("trace_id") : nullptr;
    if (dur == nullptr || tid == nullptr) continue;
    const uint64_t trace_id = static_cast<uint64_t>(tid->AsInt());
    if (trace_id == 0) continue;

    // Exported names are "name" or "name:detail"; split them back apart.
    const std::string& full = name->AsString();
    const size_t colon = full.find(':');
    const std::string hop = full.substr(0, colon);
    const std::string detail =
        colon == std::string::npos ? "" : full.substr(colon + 1);

    auto [it, fresh] = proc.index.emplace(trace_id, proc.summaries.size());
    if (fresh) {
      orbit::telemetry::RequestSummary s;
      s.trace_id = trace_id;
      proc.summaries.push_back(std::move(s));
    }
    orbit::telemetry::RequestSummary& s = proc.summaries[it->second];
    ++s.events;
    if (hop == "request") {
      s.total = MicrosToNs(*dur);
      s.outcome = intern(detail);
      continue;
    }
    bool merged = false;
    for (auto& [hop_name, total] : s.hops) {
      if (hop_name == hop) {
        total += MicrosToNs(*dur);
        merged = true;
        break;
      }
    }
    if (!merged) s.hops.emplace_back(hop, MicrosToNs(*dur));
  }

  if (processes.empty()) {
    std::fprintf(stderr, "%s: trace holds no events\n", argv[1]);
    return 2;
  }
  for (const auto& [pid, proc] : processes) {
    std::printf("=== %s (pid %lld, %llu events, %zu traced requests) ===\n",
                proc.label.empty() ? "unnamed process" : proc.label.c_str(),
                static_cast<long long>(pid),
                static_cast<unsigned long long>(proc.events),
                proc.summaries.size());
    std::fputs(orbit::telemetry::FormatHopBreakdown(proc.summaries).c_str(),
               stdout);
    std::printf("\n");
  }
  return 0;
}
