// Summarize INT postcard JSONL produced by --int-out.
//
//   int_report int.jsonl [--compare prior_int.jsonl]
//
// For every point (experiment/point/rep) the tool aggregates hop records
// across that point's sampled flows and prints a per-hop percentile table
// (count, p50/p90/p99/max of the latency each hop added, mean queue depth
// on arrival, drops stamped there). Below the tables a fabric heatmap
// renders each hop's p99 latency as a proportional bar, so one glance
// shows where time is spent across client NICs, links, pipelines, the
// recirculation orbit, and server queues.
//
// --compare aggregates both files hop-by-hop (across all points) and
// prints p50/p99 side by side with relative deltas — the quick regression
// view between two runs.
//
// Exit 0 on success, 2 on unreadable, empty, or malformed input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/telemetry_io.h"

namespace {

using orbit::harness::JsonValue;

struct HopAgg {
  std::vector<int64_t> latencies;  // sorted lazily at print time
  double queue_sum = 0;
  uint64_t drops = 0;

  void Add(int64_t latency_ns, double queue_depth, bool dropped) {
    if (dropped) {
      ++drops;
    } else {
      latencies.push_back(latency_ns);
    }
    queue_sum += queue_depth;
  }
  uint64_t count() const {
    return latencies.size() + drops;
  }
  int64_t Percentile(double q) const {
    if (latencies.empty()) return 0;
    const size_t rank = std::min(
        latencies.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies.size())));
    return latencies[rank];
  }
};

// Insertion-ordered hop aggregation (hop names appear in stamp order, which
// is deterministic; std::map would alphabetize and shuffle the fabric view).
struct Group {
  std::string label;
  std::vector<std::pair<std::string, HopAgg>> hops;
  uint64_t flows = 0;
  uint64_t truncated = 0;

  HopAgg& Hop(const std::string& name) {
    for (auto& [n, agg] : hops)
      if (n == name) return agg;
    hops.emplace_back(name, HopAgg{});
    return hops.back().second;
  }
};

bool LoadIntJsonl(const char* path, std::vector<JsonValue>* lines) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return false;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string error;
  if (!orbit::harness::ParseCountersJsonl(text, lines, &error)) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    return false;
  }
  if (lines->empty()) {
    std::fprintf(stderr,
                 "%s: no INT postcards — empty or truncated JSONL? "
                 "(produce it with --int-out; unsampled runs record none)\n",
                 path);
    return false;
  }
  return true;
}

std::string GroupKey(const JsonValue& line) {
  std::string key;
  if (const JsonValue* v = line.Find("experiment")) key += v->AsString();
  for (const char* field : {"point", "rep"}) {
    key += '|';
    if (const JsonValue* v = line.Find(field))
      key += std::to_string(v->AsInt());
  }
  return key;
}

std::string GroupLabel(const JsonValue& line) {
  std::string label;
  if (const JsonValue* v = line.Find("experiment")) label = v->AsString();
  if (const JsonValue* v = line.Find("point"))
    label += " point=" + std::to_string(v->AsInt());
  if (const JsonValue* v = line.Find("rep"))
    label += " rep=" + std::to_string(v->AsInt());
  if (const JsonValue* params = line.Find("params"))
    if (params->is_object())
      for (const auto& [name, value] : params->object())
        label += " " + name + "=" +
                 (value.is_string() ? value.AsString() : value.Dump());
  return label;
}

// Folds one postcard line's hops into `group` (or any Group-like sink).
void Accumulate(const JsonValue& line, Group* group) {
  ++group->flows;
  if (const JsonValue* t = line.Find("truncated_hops"))
    group->truncated += static_cast<uint64_t>(t->AsInt());
  const JsonValue* hops = line.Find("hops");
  if (hops == nullptr || !hops->is_array()) return;
  for (const JsonValue& h : hops->array()) {
    if (!h.is_object()) continue;
    const JsonValue* name = h.Find("hop");
    if (name == nullptr) continue;
    const JsonValue* lat = h.Find("latency_ns");
    const JsonValue* depth = h.Find("queue_depth");
    const JsonValue* drop = h.Find("drop");
    group->Hop(name->AsString())
        .Add(lat != nullptr ? lat->AsInt() : 0,
             depth != nullptr ? depth->AsDouble() : 0,
             drop != nullptr && drop->AsInt() != 0);
  }
}

void PrintGroup(Group& group) {
  std::printf("=== %s (%llu flows", group.label.c_str(),
              static_cast<unsigned long long>(group.flows));
  if (group.truncated > 0)
    std::printf(", %llu hops truncated",
                static_cast<unsigned long long>(group.truncated));
  std::printf(") ===\n");
  std::printf("  %-28s %8s %10s %10s %10s %10s %10s %7s\n", "hop", "count",
              "p50_us", "p90_us", "p99_us", "max_us", "avg_depth", "drops");
  int64_t max_p99 = 1;
  std::vector<int64_t> p99s;
  for (auto& [name, agg] : group.hops) {
    (void)name;
    std::sort(agg.latencies.begin(), agg.latencies.end());
    const int64_t p99 = agg.Percentile(0.99);
    p99s.push_back(p99);
    max_p99 = std::max(max_p99, p99);
  }
  size_t i = 0;
  for (const auto& [name, agg] : group.hops) {
    std::printf(
        "  %-28s %8llu %10.1f %10.1f %10.1f %10.1f %10.1f %7llu\n",
        name.c_str(), static_cast<unsigned long long>(agg.count()),
        static_cast<double>(agg.Percentile(0.50)) / 1000.0,
        static_cast<double>(agg.Percentile(0.90)) / 1000.0,
        static_cast<double>(p99s[i]) / 1000.0,
        static_cast<double>(agg.latencies.empty() ? 0
                                                  : agg.latencies.back()) /
            1000.0,
        agg.count() > 0 ? agg.queue_sum / static_cast<double>(agg.count())
                        : 0.0,
        static_cast<unsigned long long>(agg.drops));
    ++i;
  }
  // Fabric heatmap: each hop's p99 as a bar proportional to the worst hop.
  std::printf("  -- p99 latency heatmap --\n");
  i = 0;
  for (const auto& [name, agg] : group.hops) {
    (void)agg;
    const int width = static_cast<int>(
        std::lround(40.0 * static_cast<double>(p99s[i]) /
                    static_cast<double>(max_p99)));
    std::printf("  %-28s |%-40s| %.1fus\n", name.c_str(),
                std::string(static_cast<size_t>(std::max(width, 0)), '#')
                    .c_str(),
                static_cast<double>(p99s[i]) / 1000.0);
    ++i;
  }
  std::printf("\n");
}

// Whole-file per-hop aggregate for --compare (points merged).
Group AggregateAll(const std::vector<JsonValue>& lines) {
  Group all;
  all.label = "all points";
  for (const JsonValue& line : lines) Accumulate(line, &all);
  for (auto& [name, agg] : all.hops) {
    (void)name;
    std::sort(agg.latencies.begin(), agg.latencies.end());
  }
  return all;
}

int Compare(const std::vector<JsonValue>& now_lines,
            const std::vector<JsonValue>& prior_lines) {
  Group now = AggregateAll(now_lines);
  Group prior = AggregateAll(prior_lines);
  std::printf("%-28s %12s %12s %8s %12s %12s %8s\n", "hop", "p50_us(A)",
              "p50_us(B)", "d50", "p99_us(A)", "p99_us(B)", "d99");
  auto delta = [](int64_t a, int64_t b) -> std::string {
    if (b == 0) return a == 0 ? "=" : "new";
    const double rel = 100.0 * (static_cast<double>(a - b)) /
                       static_cast<double>(b);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", rel);
    return buf;
  };
  for (const auto& [name, agg] : now.hops) {
    HopAgg* other = nullptr;
    for (auto& [n, o] : prior.hops)
      if (n == name) other = &o;
    const int64_t p50 = agg.Percentile(0.50), p99 = agg.Percentile(0.99);
    const int64_t q50 = other != nullptr ? other->Percentile(0.50) : 0;
    const int64_t q99 = other != nullptr ? other->Percentile(0.99) : 0;
    std::printf("%-28s %12.1f %12.1f %8s %12.1f %12.1f %8s\n", name.c_str(),
                static_cast<double>(p50) / 1000.0,
                static_cast<double>(q50) / 1000.0, delta(p50, q50).c_str(),
                static_cast<double>(p99) / 1000.0,
                static_cast<double>(q99) / 1000.0, delta(p99, q99).c_str());
  }
  for (const auto& [name, agg] : prior.hops) {
    (void)agg;
    bool found = false;
    for (const auto& [n, o] : now.hops) {
      (void)o;
      if (n == name) found = true;
    }
    if (!found) std::printf("%-28s only in B\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, compare_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s int.jsonl [--compare prior_int.jsonl]\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
    if (arg == "--compare") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--compare needs a file argument\n");
        return 2;
      }
      compare_path = argv[++i];
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "usage: %s int.jsonl [--compare prior_int.jsonl]\n",
                 argv[0]);
    return 2;
  }

  std::vector<JsonValue> lines;
  if (!LoadIntJsonl(in_path.c_str(), &lines)) return 2;

  if (!compare_path.empty()) {
    std::vector<JsonValue> prior;
    if (!LoadIntJsonl(compare_path.c_str(), &prior)) return 2;
    return Compare(lines, prior);
  }

  // Group lines by point, preserving file order.
  std::vector<Group> groups;
  std::map<std::string, size_t> index;
  for (const JsonValue& line : lines) {
    const std::string key = GroupKey(line);
    auto [it, fresh] = index.emplace(key, groups.size());
    if (fresh) {
      groups.emplace_back();
      groups.back().label = GroupLabel(line);
    }
    Accumulate(line, &groups[it->second]);
  }
  for (Group& g : groups) PrintGroup(g);
  return 0;
}
