// Figure 17: impact of item size, plus panel (c) effective size.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig17ItemSize(), orbit::benchexp::Fig17EffectiveSize()}, argc, argv);
}
