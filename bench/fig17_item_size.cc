// Figure 17: impact of item size (all items share one value size — the
// worst case for OrbitCache, since every cache packet is maximal).
//
// Paper result: OrbitCache balances even 100% MTU-sized items with only a
// mild throughput drop; balancing efficiency stays high; and the
// *effective* cache size (the entry count with the best throughput)
// shrinks as values grow, because bigger cache packets stretch the orbit.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Fig. 17 — impact of item size (OrbitCache)");
  const uint32_t sizes[] = {64, 128, 256, 512, 1024, 1416};

  std::printf("(a,b) throughput and balancing efficiency at 128 entries\n");
  std::printf("%10s %10s %10s\n", "value(B)", "rx(MRPS)", "bal-eff");
  for (uint32_t vs : sizes) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = testbed::Scheme::kOrbitCache;
    cfg.value_dist = wl::ValueDist::Fixed(vs);
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    std::printf("%10u %10.2f %10.2f\n", vs, res.rx_rps / 1e6,
                res.balancing_efficiency);
    std::fflush(stdout);
  }

  std::printf("\n(c) effective cache size (best-throughput entry count)\n");
  std::printf("%10s %14s %14s\n", "value(B)", "best entries", "rx(MRPS)");
  const size_t entry_sweep[] = {16, 32, 64, 128, 256};
  for (uint32_t vs : sizes) {
    size_t best_entries = 0;
    double best_rx = 0;
    for (size_t entries : entry_sweep) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = testbed::Scheme::kOrbitCache;
      cfg.value_dist = wl::ValueDist::Fixed(vs);
      cfg.orbit_cache_size = entries;
      cfg.duration = cfg.duration / 2;  // sweep point, shorter window
      const testbed::TestbedResult res =
          testbed::FindSaturation(cfg, /*loss_tolerance=*/0.05,
                                  /*max_corrections=*/1)
              .result;
      if (res.rx_rps > best_rx) {
        best_rx = res.rx_rps;
        best_entries = entries;
      }
    }
    std::printf("%10u %14zu %14.2f\n", vs, best_entries, best_rx / 1e6);
    std::fflush(stdout);
  }
  return 0;
}
