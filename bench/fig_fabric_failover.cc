// Fabric fault tolerance: collapse depth and recovery time under spine
// and leaf crashes, versus the failover detection window, across 2/4/8
// racks. Spec commentary lives on FigFabricFailover() in experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({orbit::benchexp::FigFabricFailover()},
                                     argc, argv);
}
