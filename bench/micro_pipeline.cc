// Micro-benchmarks of the simulation engine itself: how many simulated
// events per second the event queue, link layer, and switch pipeline
// sustain — the figure harness wall-clock budget depends on these.
#include <benchmark/benchmark.h>

#include "nocache/program.h"
#include "orbitcache/program.h"
#include "rmt/switch.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

using namespace orbit;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  SimTime t = 0;
  for (auto _ : state) {
    q.PushCallback(t + 100, [] {});
    q.PushCallback(t + 50, [] {});
    benchmark::DoNotOptimize(q.Pop());
    benchmark::DoNotOptimize(q.Pop());
    t += 10;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueuePushPop);

// A sink node that drops everything.
class SinkNode : public sim::Node {
 public:
  void OnPacket(sim::PacketPtr, int) override { ++received_; }
  std::string name() const override { return "sink"; }
  uint64_t received_ = 0;
};

void BM_LinkDelivery(benchmark::State& state) {
  sim::Simulator sim;
  sim::Network net(&sim);
  SinkNode a, b;
  net.Connect(&a, &b, sim::LinkConfig{});
  for (auto _ : state) {
    auto pkt = sim::NewPacket(0, 0, 0, 0);
    pkt->msg.key = "0123456789abcdef";
    net.Send(&a, 0, std::move(pkt));
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkDelivery);

void BM_SwitchForward(benchmark::State& state) {
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::AsicConfig asic;
  rmt::SwitchDevice sw(&sim, &net, "sw", asic);
  nocache::ForwardProgram program;
  sw.SetProgram(&program);
  SinkNode a, b;
  auto at_a = net.Connect(&a, &sw, sim::LinkConfig{});
  auto at_b = net.Connect(&b, &sw, sim::LinkConfig{});
  (void)at_a;
  sw.AddRoute(2, at_b.port_b);
  for (auto _ : state) {
    auto pkt = sim::NewPacket(0, 0, 0, 0);
    pkt->src = 1;
    pkt->dst = 2;
    net.Send(&a, 0, std::move(pkt));
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForward);

void BM_OrbitCachePacketPass(benchmark::State& state) {
  // One circulating cache packet passing the ingress logic with an empty
  // request table — the hot loop of every experiment.
  sim::Simulator sim;
  sim::Network net(&sim);
  rmt::AsicConfig asic;
  rmt::SwitchDevice sw(&sim, &net, "sw", asic);
  oc::OrbitConfig cfg;
  cfg.capacity = 1024;
  oc::OrbitProgram program(&sw, cfg);
  sw.SetProgram(&program);

  const Hash128 hkey{1, 2};
  program.InsertEntry(hkey, 0);

  sim::Packet pkt;
  pkt.msg.op = proto::Op::kReadRep;
  pkt.msg.hkey = hkey;
  pkt.msg.epoch = program.EpochOf(0);
  pkt.from_recirc = true;
  // Validate the entry so the packet recirculates instead of dropping.
  sim::Packet validator = pkt;
  validator.msg.op = proto::Op::kFetchRep;
  validator.from_recirc = false;
  (void)program.Ingress(validator, sw);

  for (auto _ : state) {
    benchmark::DoNotOptimize(program.Ingress(pkt, sw));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrbitCachePacketPass);

}  // namespace
