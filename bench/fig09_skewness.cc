// Figure 9: saturated throughput vs key skewness.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig09Skewness()}, argc, argv);
}
