// Figure 9: throughput with different key access distributions.
//
// Paper result: OrbitCache sustains high throughput regardless of skew;
// NoCache and NetCache degrade as skew rises. At zipf-0.99 OrbitCache beats
// NoCache by ~3.6x and NetCache by ~2x.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  const double skews[] = {0.0, 0.90, 0.95, 0.99};
  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};

  benchutil::PrintHeader("Fig. 9 — throughput (MRPS) vs key skewness");
  std::printf("%-12s %10s %10s %10s %10s\n", "scheme", "uniform", "zipf-0.90",
              "zipf-0.95", "zipf-0.99");

  double orbit99 = 0, nocache99 = 0, netcache99 = 0;
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (double skew : skews) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = scheme;
      cfg.zipf_theta = skew;
      const testbed::TestbedResult res =
          testbed::FindSaturation(cfg).result;
      std::printf(" %10.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
      if (skew == 0.99) {
        if (scheme == testbed::Scheme::kOrbitCache) orbit99 = res.rx_rps;
        if (scheme == testbed::Scheme::kNoCache) nocache99 = res.rx_rps;
        if (scheme == testbed::Scheme::kNetCache) netcache99 = res.rx_rps;
      }
    }
    std::printf("\n");
  }
  std::printf("\nzipf-0.99 speedup: OrbitCache/NoCache = %.2fx (paper: 3.59x), "
              "OrbitCache/NetCache = %.2fx (paper: 1.95x)\n",
              orbit99 / nocache99, orbit99 / netcache99);
  return 0;
}
