// Failure injection: throughput collapse and recovery around a switch
// reset (controller cache rebuild) and a server crash/restart (§3.9).
// Spec definition (fault axis, recovery metric): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({orbit::benchexp::FigFailures()}, argc,
                                     argv);
}
