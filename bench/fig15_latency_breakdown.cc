// Figure 15: switch- vs server-served latency breakdown.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig15LatencyBreakdown()}, argc, argv);
}
