// Figure 15: latency breakdown — requests handled by the switch cache vs
// by the storage servers, as throughput rises.
//
// Paper result: OrbitCache's switch-handled median is slightly above
// NetCache's (requests wait for the circulating cache packet) and its
// switch tail grows with load (request-table queueing + cloning), yet stays
// tens of microseconds even where server tails blow up at saturation.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Fig. 15 — latency breakdown (us) vs throughput");
  std::printf("%-12s %9s | %9s %9s | %9s %9s | %12s\n", "scheme", "rx(MRPS)",
              "sw p50", "sw p99", "srv p50", "srv p99", "sw-resident p99");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};

  for (auto scheme : schemes) {
    testbed::TestbedConfig base = benchutil::PaperConfig(mode);
    base.scheme = scheme;
    const double sat_tx = testbed::FindSaturation(base).sat_tx_rps;
    for (double f : fractions) {
      testbed::TestbedConfig cfg = base;
      cfg.client_rate_rps = f * sat_tx;
      const testbed::TestbedResult res = testbed::RunTestbed(cfg);
      std::printf("%-12s %9.2f | %9.1f %9.1f | %9.1f %9.1f | %12.1f\n",
                  testbed::SchemeName(scheme), res.rx_rps / 1e6,
                  res.read_cached_latency.Median() / 1e3,
                  res.read_cached_latency.P99() / 1e3,
                  res.read_server_latency.Median() / 1e3,
                  res.read_server_latency.P99() / 1e3,
                  res.switch_resident.P99() / 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
