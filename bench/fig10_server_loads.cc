// Figure 10: per-server load at saturation (zipf-0.99).
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig10ServerLoads()}, argc, argv);
}
