// Figure 10: load on individual storage servers (zipf-0.99, 32 servers).
//
// Paper result: NoCache and NetCache leave hot-partition servers heavily
// overloaded relative to the rest; OrbitCache's per-server loads are nearly
// flat because every hot item — whatever its size — is absorbed upstream.
#include <algorithm>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader(
      "Fig. 10 — per-server load (KRPS) at saturation, zipf-0.99");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  for (auto scheme : schemes) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = scheme;
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    const double secs =
        static_cast<double>(cfg.duration) / static_cast<double>(kSecond);

    std::printf("%-12s", testbed::SchemeName(scheme));
    for (size_t i = 0; i < res.server_loads.size(); ++i) {
      if (i % 8 == 0 && i > 0) std::printf("\n%-12s", "");
      std::printf(" %6.1f",
                  static_cast<double>(res.server_loads[i]) / secs / 1e3);
    }
    const auto [mn, mx] = std::minmax_element(res.server_loads.begin(),
                                              res.server_loads.end());
    std::printf("\n%-12s min=%.1fK max=%.1fK balancing-efficiency=%.2f\n\n",
                "", static_cast<double>(*mn) / secs / 1e3,
                static_cast<double>(*mx) / secs / 1e3,
                res.balancing_efficiency);
  }
  return 0;
}
