// Leaf–spine scale-out: aggregate saturated throughput and p99 latency
// versus rack count and skew, NoCache vs per-leaf OrbitCache (§3.9
// multi-rack deployment). Spec definition: bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({orbit::benchexp::FigFabric()}, argc,
                                     argv);
}
