// The whole experiment suite: every figure, ablation, and extra, one
// command. `run_all --quick --jobs 4 --out bench_quick.jsonl` is the CI
// profile; positional arguments filter by experiment-name substring
// (e.g. `run_all fig09 fig12`). See docs/HARNESS.md.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain(orbit::benchexp::AllExperiments(), argc,
                                     argv);
}
