// Figure 11: read latency vs Rx throughput.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig11LatencyThroughput()}, argc, argv);
}
