// Figure 11: median and 99th-percentile read latency vs Rx throughput.
//
// Paper result: OrbitCache reaches the highest throughput before its
// latency knee; its median sits ~1us above NetCache (requests wait for the
// circulating cache packet) but far below the saturating baselines.
#include "bench/bench_util.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Fig. 11 — read latency vs Rx throughput");
  std::printf("%-12s %10s %10s %10s %10s\n", "scheme", "rx(MRPS)", "p50(us)",
              "p99(us)", "loss");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 0.95, 1.05};

  for (auto scheme : schemes) {
    testbed::TestbedConfig base = benchutil::PaperConfig(mode);
    base.scheme = scheme;
    // Establish this scheme's saturation point once, then sweep below it.
    const double sat_tx = testbed::FindSaturation(base).sat_tx_rps;
    for (double f : fractions) {
      testbed::TestbedConfig cfg = base;
      cfg.client_rate_rps = f * sat_tx;
      const testbed::TestbedResult res = testbed::RunTestbed(cfg);
      stats::Histogram reads = res.read_cached_latency;
      reads.Merge(res.read_server_latency);
      std::printf("%-12s %10.2f %10.1f %10.1f %9.1f%%\n",
                  testbed::SchemeName(scheme), res.rx_rps / 1e6,
                  reads.Median() / 1e3, reads.P99() / 1e3,
                  100.0 * (1.0 - res.rx_rps / std::max(1.0, res.tx_rps)));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
