// §2.2 design-rationale experiment: why OrbitCache recirculates *cache
// packets* instead of *requests*.
//
// The strawman keeps the NetCache architecture but reads large values by
// recirculating each request once per 64B slice ("if every request is
// recirculated 8 times to read a 1024-byte value, the effective throughput
// of the recirculation port is reduced to 1/8"). The recirculation load is
// then proportional to the request rate, and the single internal port caps
// cache-hit throughput. OrbitCache's recirculation load is a small
// constant — one pass per circulating cache packet — independent of load.
//
// Setup: a tiny all-hot key space that both designs fully cache (so the
// storage servers are idle and the switch itself is the bottleneck), value
// sizes swept from one pass (64B) to a full packet.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);
  (void)mode;

  benchutil::PrintHeader(
      "§2.2 rationale — request recirculation vs circulating cache packets");
  std::printf("%10s | %10s %9s %9s | %10s %9s %9s\n", "value(B)", "RR MRPS",
              "RR p50", "RR p99", "Orbit MRPS", "p50", "p99");

  for (uint32_t vs : {64u, 256u, 1024u}) {
    testbed::TestbedConfig base;
    base.num_clients = 4;
    base.num_servers = 8;
    base.server_rate_rps = 100'000;
    base.client_rate_rps = 12'000'000;  // drive the switch, not the servers
    base.num_keys = 32;                // everything cacheable and cached
    base.zipf_theta = 0.0;             // spread load across all hot keys
    base.value_dist = wl::ValueDist::Fixed(vs);
    base.orbit_cache_size = 32;
    base.netcache_size = 32;
    base.warmup = 30 * kMillisecond;
    base.duration = 100 * kMillisecond;

    testbed::TestbedConfig rr = base;
    rr.scheme = testbed::Scheme::kNetCache;
    rr.netcache_recirc_read = true;
    const testbed::TestbedResult rr_res = testbed::RunTestbed(rr);

    testbed::TestbedConfig oc = base;
    oc.scheme = testbed::Scheme::kOrbitCache;
    const testbed::TestbedResult oc_res = testbed::RunTestbed(oc);

    std::printf("%10u | %10.2f %8.1fus %8.1fus | %10.2f %8.1fus %8.1fus\n",
                vs, rr_res.rx_rps / 1e6,
                rr_res.read_cached_latency.Median() / 1e3,
                rr_res.read_cached_latency.P99() / 1e3, oc_res.rx_rps / 1e6,
                oc_res.read_cached_latency.Median() / 1e3,
                oc_res.read_cached_latency.P99() / 1e3);
    std::fflush(stdout);
  }
  std::printf("\nRR = NetCache + request recirculation (1 pass per 64B "
              "slice): every hit pays ceil(len/64)-1 recirculation passes in "
              "latency and recirc-port bandwidth, so both grow with value "
              "size and offered load. OrbitCache pays one pass per *serve* "
              "and keeps a constant 32-packet ring.\n");
  return 0;
}
