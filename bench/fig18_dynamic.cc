// Figure 18: dynamic workloads — the "hot-in" pattern swaps the popularity
// of the hottest and coldest items periodically, instantly staling the
// whole cache.
//
// Paper result: throughput dips at each swap and recovers within a few
// seconds as the controller replaces the cache entries from the servers'
// top-k reports; the overflow-request ratio spikes at the swap (requests
// for not-yet-fetched keys overflow to servers) and settles after fetches
// complete. The paper runs 60s with swaps every 10s on 4 unthrottled
// servers; quick mode compresses the timeline (12s, 2s swaps) so the bench
// suite stays fast — the dip-and-recover dynamics are unchanged.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
  cfg.scheme = testbed::Scheme::kOrbitCache;
  cfg.num_clients = 4;
  cfg.num_servers = 4;  // paper: 4 servers without emulation. We keep a
  // finite per-server capacity (the paper's real CPUs have one too) so the
  // post-swap traffic that misses the stale cache can actually overload
  // the hot partition — that overload is what produces the dips.
  cfg.server_rate_rps = 100'000;
  cfg.client_rate_rps = 450'000;
  cfg.hot_in = true;
  cfg.hot_in_count = 128;
  cfg.run_cache_updates = true;   // the experiment is about cache updates
  cfg.update_period = 500 * kMillisecond;
  cfg.report_period = 500 * kMillisecond;
  cfg.warmup = 0;                 // the full timeline is the result
  if (mode.full) {
    cfg.hot_in_period = 10 * kSecond;
    cfg.duration = 60 * kSecond;
    cfg.timeline_bin = kSecond;
  } else {
    cfg.hot_in_period = 2 * kSecond;
    cfg.duration = 12 * kSecond;
    cfg.timeline_bin = 200 * kMillisecond;
  }

  benchutil::PrintHeader("Fig. 18 — hot-in dynamic workload (OrbitCache)");
  std::printf("swap every %.0fs, %zu-entry cache, %.0fK RPS offered\n\n",
              static_cast<double>(cfg.hot_in_period) / kSecond,
              cfg.orbit_cache_size, cfg.client_rate_rps / 1e3);

  const testbed::TestbedResult res = testbed::RunTestbed(cfg);

  std::printf("%8s %12s %12s\n", "t(s)", "rx(KRPS)", "overflow");
  const size_t n = std::min(res.throughput_timeline.size(),
                            res.overflow_ratio_timeline.size());
  for (size_t i = 0; i < n; ++i) {
    std::printf("%8.1f %12.1f %11.2f%%\n",
                static_cast<double>(i * cfg.timeline_bin) / kSecond,
                res.throughput_timeline[i] / 1e3,
                100.0 * res.overflow_ratio_timeline[i]);
  }
  std::printf("\ncollisions (inherited CacheIdx resolutions): %llu, "
              "stale reads: %llu\n",
              static_cast<unsigned long long>(res.collisions),
              static_cast<unsigned long long>(res.stale_reads));
  return 0;
}
