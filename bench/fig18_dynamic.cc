// Figure 18: hot-in dynamic workload timeline.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig18Dynamic()}, argc, argv);
}
