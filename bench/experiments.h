// Declarative specs for every figure, ablation, and extra experiment.
//
// Each bench binary registers one or more of these with the harness
// (harness::HarnessMain) instead of hand-rolling sweep loops; bench/run_all
// executes AllExperiments() as one suite. The paper commentary that used to
// live in each binary's header comment now sits on the spec definitions in
// experiments.cc.
#pragma once

#include <vector>

#include "harness/spec.h"

namespace orbit::benchexp {

harness::ExperimentSpec MotivationCacheability();   // §2.1 analysis
harness::ExperimentSpec Fig09Skewness();
harness::ExperimentSpec Fig10ServerLoads();
harness::ExperimentSpec Fig11LatencyThroughput();
harness::ExperimentSpec Fig12WriteRatio();
harness::ExperimentSpec Fig13Scalability();
harness::ExperimentSpec Fig14Production();
harness::ExperimentSpec Fig15LatencyBreakdown();
harness::ExperimentSpec Fig16CacheSize();
harness::ExperimentSpec Fig17ItemSize();
harness::ExperimentSpec Fig17EffectiveSize();       // panel (c)'s grid
harness::ExperimentSpec Fig18Dynamic();
harness::ExperimentSpec AblationCloning();
harness::ExperimentSpec AblationQueueDepth();
harness::ExperimentSpec AblationWritePolicy();
harness::ExperimentSpec AblationRecircBandwidth();
harness::ExperimentSpec RationaleRequestRecirc();   // §2.2 strawman
harness::ExperimentSpec ExtraKeySize();
harness::ExperimentSpec YcsbSuite();
// §3.9 failure handling: throughput timeline around an injected switch
// reset (controller rebuild) and a server crash/restart, with recovery
// metrics derived from the timeline.
harness::ExperimentSpec FigFailures();
// Leaf–spine scale-out (src/fabric/): aggregate saturated throughput and
// p99 latency versus rack count and skew, NoCache vs per-leaf OrbitCache.
harness::ExperimentSpec FigFabric();
// Fabric fault tolerance: throughput collapse depth and recovery time
// under spine and leaf crashes versus the failover detection window,
// across 2/4/8 racks (probe-based rerouting + graceful cache degradation).
harness::ExperimentSpec FigFabricFailover();

// Registration order is the suite order and the JSONL record order.
std::vector<harness::ExperimentSpec> AllExperiments();

}  // namespace orbit::benchexp
