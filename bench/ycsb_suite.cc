// Extra (not a paper figure): the three schemes on the classic YCSB core
// mixes. Complements Fig. 12's pure write-ratio sweep with the workload
// shapes practitioners actually quote.
#include "bench/bench_util.h"
#include "workload/ycsb.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader(
      "YCSB core mixes — saturated throughput (MRPS), zipf-0.99");
  std::printf("%-12s", "scheme");
  for (const auto& p : wl::YcsbCoreWorkloads())
    std::printf("  %s(w=%.2f)", p.id.c_str(), p.write_ratio);
  std::printf("\n");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (const auto& profile : wl::YcsbCoreWorkloads()) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = scheme;
      cfg.zipf_theta = profile.zipf_theta;
      cfg.write_ratio = profile.write_ratio;
      const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
      std::printf(" %9.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(D's read-latest skew and F's RMW are approximated within "
              "the open-loop model; see src/workload/ycsb.h)\n");
  return 0;
}
