// bench/microbench — simulator hot-path throughput probes.
//
// Four numbers track the discrete-event core over time (docs/PERF.md):
//   * event_queue_mops       raw EventQueue throughput (classic "hold"
//                            model: pop one, push one at a later time)
//   * link_mpps              pooled packets per second through a 2-node
//                            link, allocation-free in steady state
//   * link_int_mpps          the same link with INT attached and the
//                            always-on histograms recording every packet
//                            (the "observability tax"; budget <5% —
//                            the printed link_int_overhead_pct shows it)
//   * quick_testbed_wall_s   wall-clock of one quick-scale OrbitCache
//                            testbed point (the unit FindSaturation
//                            re-runs dozens of times per figure)
//
// Results print as one JSON document (--out writes it to a file; the
// checked-in trajectory lives in BENCH_*.json at the repo root). With
// --check REF.json the run becomes a CI gate: it exits 1 when any metric
// regresses more than --regression (default 25%) against the reference —
// throughput metrics must not drop, *_wall_s metrics must not grow.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"
#include "harness/flags.h"
#include "harness/json.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "telemetry/int/int.h"
#include "telemetry/netstats.h"
#include "testbed/testbed.h"

namespace orbit {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- event_queue_mops ----------------------------------------------------

class NullTimer : public sim::TimerHandler {
 public:
  void OnTimer(uint64_t) override {}
};

// Hold model: keep the queue at a steady population, each iteration pops
// the earliest event and pushes a replacement at a pseudo-random later
// time. Counts both the pop and the push as operations.
double EventQueueMops(uint64_t iterations) {
  sim::EventQueue queue;
  NullTimer handler;
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next_delay = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<SimTime>((lcg >> 33) % 1000);
  };
  constexpr size_t kPopulation = 1 << 16;
  for (size_t i = 0; i < kPopulation; ++i)
    queue.PushTimer(next_delay(), &handler, i);

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iterations; ++i) {
    sim::Event e = queue.Pop();
    queue.PushTimer(e.time + 1 + next_delay(), e.timer, e.arg);
  }
  const double wall = Seconds(start);
  return 2.0 * static_cast<double>(iterations) / wall / 1e6;
}

// --- link_mpps -----------------------------------------------------------

class SinkNode : public sim::Node {
 public:
  void OnPacket(sim::PacketPtr pkt, int) override {
    ++received;
    pkt.reset();  // back to the pool
  }
  std::string name() const override { return "sink"; }
  uint64_t received = 0;
};

// Streams pooled packets across one link in waves; each wave drains fully
// before the next starts, so the pool recycles the same few hundred
// packets for the whole measurement. With `with_int` the link carries the
// INT tap and the always-on histograms record every packet — the cost of
// leaving observability on unsampled.
double LinkMpps(uint64_t packets, bool with_int = false) {
  sim::Simulator simulator;
  sim::Network net(&simulator);
  SinkNode src, dst;
  sim::LinkConfig link;
  link.rate_gbps = 100.0;
  link.propagation = 500;
  net.Connect(&src, &dst, link);
  telemetry::IntSink sink({/*sample_every=*/0, /*histograms=*/true});
  if (with_int) telemetry::AttachLinkInt(sink, net);

  constexpr uint64_t kWave = 512;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t sent = 0; sent < packets;) {
    for (uint64_t i = 0; i < kWave && sent < packets; ++i, ++sent) {
      auto pkt = sim::NewPacket(1, 2, 0, 0);
      pkt->msg.seq = static_cast<uint32_t>(sent);
      net.Send(&src, 0, std::move(pkt));
    }
    simulator.RunToCompletion();
  }
  const double wall = Seconds(start);
  return static_cast<double>(dst.received) / wall / 1e6;
}

// --- quick_testbed_wall_s ------------------------------------------------

// One quick-scale OrbitCache point (same shape as run_all --quick uses:
// 100K keys, 20 ms warmup, 60 ms window).
double QuickTestbedWallSeconds() {
  testbed::TestbedConfig config;
  config.scheme = testbed::Scheme::kOrbitCache;
  config.workload.num_keys = 100'000;
  config.warmup = 20 * kMillisecond;
  config.duration = 60 * kMillisecond;
  const auto start = std::chrono::steady_clock::now();
  const testbed::TestbedResult result = testbed::RunTestbed(config);
  const double wall = Seconds(start);
  std::fprintf(stderr, "  quick testbed: %llu events, %.2f Mrx/s\n",
               static_cast<unsigned long long>(result.events_processed),
               result.rx_rps / 1e6);
  return wall;
}

// --- driver --------------------------------------------------------------

struct Metric {
  std::string name;
  double value = 0;
  bool lower_is_better = false;
};

harness::Flags MakeFlags() {
  harness::Flags flags;
  flags.AddUint64("events", 2'000'000, "N",
                  "event-queue hold-model iterations (default 2M)");
  flags.AddUint64("packets", 1'000'000, "N",
                  "packets through the 2-node link (default 1M)");
  flags.AddInt("repeat", 3, "N",
               "best-of-N passes for the micro probes (default 3)");
  flags.AddBool("no-testbed", "skip the quick-testbed probe");
  flags.AddString("out", "", "PATH", "also write the JSON document to PATH");
  flags.AddString("label", "", "TEXT",
                  "free-form label recorded in the JSON (a date, a sha)");
  flags.AddString("check", "", "REF.json",
                  "compare against a reference document; exit 1 on\n"
                  "regression beyond --regression");
  flags.AddDouble("regression", 0.25, "F",
                  "allowed fractional regression for --check (default\n"
                  "0.25 = 25%)");
  flags.AddDouble("suite-wall-s", 0, "SEC",
                  "record an externally measured run_all --quick\n"
                  "wall-clock in the JSON");
  flags.AddDouble("suite-baseline-wall-s", 0, "SEC",
                  "the pre-overhaul suite wall-clock to compare against");
  flags.AddBool("help", "this message").Alias("-h");
  return flags;
}

int CheckAgainstReference(const std::vector<Metric>& metrics,
                          const std::string& path, double allowed) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  harness::JsonValue doc;
  std::string error;
  if (!harness::ParseJson(text, &doc, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  const harness::JsonValue* ref_metrics = doc.Find("metrics");
  if (ref_metrics == nullptr || !ref_metrics->is_object()) {
    std::fprintf(stderr, "%s: no \"metrics\" object\n", path.c_str());
    return 2;
  }

  int regressions = 0;
  for (const Metric& m : metrics) {
    const harness::JsonValue* ref = ref_metrics->Find(m.name);
    if (ref == nullptr || !ref->is_number()) {
      std::printf("%-24s %10.3f  (no reference — skipped)\n", m.name.c_str(),
                  m.value);
      continue;
    }
    const double r = ref->AsDouble();
    const bool bad = m.lower_is_better ? m.value > r * (1 + allowed)
                                       : m.value < r * (1 - allowed);
    const double delta = r > 0 ? (m.value - r) / r * 100 : 0;
    std::printf("%-24s %10.3f  vs ref %10.3f  (%+.1f%%)%s\n", m.name.c_str(),
                m.value, r, delta, bad ? "  REGRESSION" : "");
    if (bad) ++regressions;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "%d metric(s) regressed more than %.0f%% vs %s\n"
                 "(if the change is intentional, refresh the reference)\n",
                 regressions, allowed * 100, path.c_str());
    return 1;
  }
  std::printf("all metrics within %.0f%% of %s\n", allowed * 100,
              path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  harness::Flags flags = MakeFlags();
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\nusage:\n%s", flags.error().c_str(),
                 MakeFlags().Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("usage: %s [flags]\n%s", argv[0], MakeFlags().Usage().c_str());
    return 0;
  }

  const int repeat = flags.GetInt("repeat") < 1 ? 1 : flags.GetInt("repeat");
  std::vector<Metric> metrics;

  std::fprintf(stderr, "event queue: %llu hold iterations x%d...\n",
               static_cast<unsigned long long>(flags.GetUint64("events")),
               repeat);
  double mops = 0;
  for (int i = 0; i < repeat; ++i)
    mops = std::max(mops, EventQueueMops(flags.GetUint64("events")));
  metrics.push_back({"event_queue_mops", mops, false});

  std::fprintf(stderr, "link, then link + INT histograms: %llu pooled "
               "packets x%d each...\n",
               static_cast<unsigned long long>(flags.GetUint64("packets")),
               repeat);
  // Plain and INT-instrumented passes interleave so clock-speed drift
  // over the measurement hits both sides equally; best-of-N per side.
  double mpps = 0, int_mpps = 0;
  for (int i = 0; i < repeat; ++i) {
    mpps = std::max(mpps, LinkMpps(flags.GetUint64("packets")));
    int_mpps = std::max(int_mpps, LinkMpps(flags.GetUint64("packets"), true));
  }
  metrics.push_back({"link_mpps", mpps, false});
  metrics.push_back({"link_int_mpps", int_mpps, false});
  const double int_overhead = (mpps - int_mpps) / mpps * 100.0;
  std::fprintf(stderr, "  always-on histogram overhead: %.1f%%\n",
               int_overhead);
  metrics.push_back({"link_int_overhead_pct", int_overhead, true});

  if (!flags.GetBool("no-testbed")) {
    std::fprintf(stderr, "quick testbed point...\n");
    metrics.push_back({"quick_testbed_wall_s", QuickTestbedWallSeconds(), true});
  }

  harness::JsonValue doc = harness::JsonValue::MakeObject();
  doc.Set("bench", "microbench");
  if (!flags.GetString("label").empty())
    doc.Set("label", flags.GetString("label"));
  harness::JsonValue out_metrics = harness::JsonValue::MakeObject();
  for (const Metric& m : metrics) out_metrics.Set(m.name, m.value);
  doc.Set("metrics", std::move(out_metrics));
  if (flags.GetDouble("suite-wall-s") > 0) {
    harness::JsonValue suite = harness::JsonValue::MakeObject();
    suite.Set("wall_s", flags.GetDouble("suite-wall-s"));
    if (flags.GetDouble("suite-baseline-wall-s") > 0) {
      suite.Set("baseline_wall_s", flags.GetDouble("suite-baseline-wall-s"));
      suite.Set("speedup", flags.GetDouble("suite-baseline-wall-s") /
                               flags.GetDouble("suite-wall-s"));
    }
    doc.Set("quick_suite", std::move(suite));
  }

  const std::string json = doc.Dump();
  std::printf("%s\n", json.c_str());
  if (!flags.GetString("out").empty()) {
    std::FILE* f = std::fopen(flags.GetString("out").c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.GetString("out").c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (!flags.GetString("check").empty())
    return CheckAgainstReference(metrics, flags.GetString("check"),
                                 flags.GetDouble("regression"));
  return 0;
}

}  // namespace
}  // namespace orbit

int main(int argc, char** argv) { return orbit::Main(argc, argv); }
