// Micro-benchmarks of the substrate data structures (google-benchmark).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "kv/hash_table.h"
#include "orbitcache/request_table.h"
#include "proto/codec.h"
#include "rmt/resources.h"
#include "stats/histogram.h"
#include "workload/count_min.h"
#include "workload/keyspace.h"
#include "workload/zipf.h"

namespace {

using namespace orbit;

std::vector<std::string> MakeKeys(size_t n) {
  wl::KeySpace ks(n, 16, 1);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(ks.KeyForId(i));
  return keys;
}

void BM_Hash64(benchmark::State& state) {
  const std::string key(static_cast<size_t>(state.range(0)), 'k');
  for (auto _ : state) benchmark::DoNotOptimize(Hash64(key));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(16)->Arg(64)->Arg(1024);

void BM_HashKey128(benchmark::State& state) {
  const std::string key(static_cast<size_t>(state.range(0)), 'k');
  for (auto _ : state) benchmark::DoNotOptimize(HashKey128(key));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashKey128)->Arg(16)->Arg(64);

void BM_HashTableGet(benchmark::State& state) {
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  kv::HashTable table;
  for (const auto& k : keys) table.Put(k, kv::Value::Synthetic(64, 1));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_HashTableGet)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_HashTablePut(benchmark::State& state) {
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    kv::HashTable table;
    state.ResumeTiming();
    for (const auto& k : keys) table.Put(k, kv::Value::Synthetic(64, 1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTablePut)->Arg(65536);

void BM_ZipfSample(benchmark::State& state) {
  wl::ZipfGenerator zipf(10'000'000, 0.99);
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Sample(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_CountMinUpdate(benchmark::State& state) {
  wl::CountMin cm(5, 8192);
  const auto keys = MakeKeys(1024);
  size_t i = 0;
  for (auto _ : state) {
    cm.Update(keys[i]);
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_CountMinUpdate);

void BM_RequestTableEnqueueDequeue(benchmark::State& state) {
  rmt::Resources res((rmt::AsicConfig()));
  oc::RequestTable table(&res, 1024, 8, 2);
  oc::RequestMeta meta{1, 2, 3, 4};
  uint32_t idx = 0;
  for (auto _ : state) {
    table.TryEnqueue(idx, meta);
    benchmark::DoNotOptimize(table.TryDequeue(idx));
    idx = (idx + 1) & 1023;
  }
}
BENCHMARK(BM_RequestTableEnqueueDequeue);

void BM_CodecRoundTrip(benchmark::State& state) {
  proto::Message msg;
  msg.op = proto::Op::kReadRep;
  msg.key = std::string(16, 'k');
  msg.value = kv::Value::Synthetic(static_cast<uint32_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto wire = proto::Encode(msg);
    benchmark::DoNotOptimize(proto::Decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) + 28));
}
BENCHMARK(BM_CodecRoundTrip)->Arg(64)->Arg(1024);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 1103515245 + 12345) & 0xffffff;
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
