// Figure 12: throughput vs write ratio.
//
// Paper result: OrbitCache's gain shrinks as writes grow (each write for a
// cached key invalidates the entry until the write reply refreshes it) and
// converges to NoCache at 100% writes; NetCache behaves alike.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader(
      "Fig. 12 — saturated throughput (MRPS) vs write ratio, zipf-0.99");
  const double ratios[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
  std::printf("%-12s", "scheme");
  for (double w : ratios) std::printf("   w=%4.2f", w);
  std::printf("\n");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (double w : ratios) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = scheme;
      cfg.write_ratio = w;
      const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
      std::printf(" %8.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
