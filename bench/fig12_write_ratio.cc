// Figure 12: saturated throughput vs write ratio.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig12WriteRatio()}, argc, argv);
}
