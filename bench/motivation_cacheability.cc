// §2.1 motivation analysis: how many items of 54 Twitter-like workloads
// could NetCache-class systems cache (16B keys / 128B values), vs
// OrbitCache's single-packet limit?
//
// Paper numbers this harness reproduces:
//   * 3.7% of workloads have >80% of keys ≤ 16B,
//   * 38.9% have >80% of values ≤ 128B,
//   * 85% have <10% cacheable items; 77.8% have essentially none,
//   * only 2 workloads exceed 50% cacheable.
#include <cstdio>

#include "proto/message.h"
#include "workload/twitter.h"

int main() {
  using namespace orbit;

  const auto workloads = wl::MotivationWorkloads();
  const int kSamples = 20000;

  wl::CacheabilityLimits netcache_limits;  // 16B keys, 128B values
  wl::CacheabilityLimits key_only{16, UINT32_MAX, 0};
  wl::CacheabilityLimits value_only{UINT32_MAX, 128, 0};
  wl::CacheabilityLimits orbit_limits{UINT32_MAX, UINT32_MAX,
                                      proto::kMaxPayloadBytes};

  int small_keys = 0, small_values = 0, none = 0, under10 = 0, over50 = 0;
  double netcache_sum = 0, orbit_sum = 0;

  std::printf("%-22s %9s %9s %11s %9s\n", "workload", "keys<=16", "val<=128",
              "netcacheable", "orbit");
  int i = 0;
  for (const auto& w : workloads) {
    const double kf = wl::CacheableFraction(w, key_only, kSamples, 1);
    const double vf = wl::CacheableFraction(w, value_only, kSamples, 2);
    const double nc = wl::CacheableFraction(w, netcache_limits, kSamples, 3);
    const double oc = wl::CacheableFraction(w, orbit_limits, kSamples, 4);
    if (kf > 0.8) ++small_keys;
    if (vf > 0.8) ++small_values;
    if (nc < 1e-4) ++none;
    if (nc < 0.10) ++under10;
    if (nc > 0.50) ++over50;
    netcache_sum += nc;
    orbit_sum += oc;
    // Print a sample of rows plus every "interesting" workload.
    if (i < 6 || nc > 0.05)
      std::printf("%-22s %8.1f%% %8.1f%% %10.1f%% %8.1f%%\n", w.name.c_str(),
                  100 * kf, 100 * vf, 100 * nc, 100 * oc);
    ++i;
  }

  const double n = static_cast<double>(workloads.size());
  std::printf("\nsummary over %zu workloads            paper\n",
              workloads.size());
  std::printf("  >80%% keys <= 16B      : %4.1f%%      3.7%%\n",
              100 * small_keys / n);
  std::printf("  >80%% values <= 128B   : %4.1f%%     38.9%%\n",
              100 * small_values / n);
  std::printf("  <10%% items cacheable  : %4.1f%%     85.0%%\n",
              100 * under10 / n);
  std::printf("  ~zero items cacheable : %4.1f%%     77.8%%\n",
              100 * none / n);
  std::printf("  >50%% items cacheable  : %4d        2\n", over50);
  std::printf("  mean cacheable, NetCache-class : %4.1f%%\n",
              100 * netcache_sum / n);
  std::printf("  mean cacheable, OrbitCache     : %4.1f%%\n",
              100 * orbit_sum / n);
  return 0;
}
