// §2.1 motivation: cacheability of 54 Twitter-like workloads.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::MotivationCacheability()}, argc, argv);
}
