// OrbitCache design ablations: cloning, queue depth S, write policy, recirculation bandwidth.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::AblationCloning(), orbit::benchexp::AblationQueueDepth(), orbit::benchexp::AblationWritePolicy(), orbit::benchexp::AblationRecircBandwidth()}, argc, argv);
}
