// Ablations of OrbitCache's design choices (DESIGN.md §4).
//
//  1. PRE cloning vs the §3.5 strawman (serve one request, then refetch
//     the cache packet from the server): cloning is what lets one fetch
//     serve arbitrarily many requests.
//  2. Request-table queue depth S: deeper queues absorb bursts for hot
//     keys; shallow queues overflow to the servers.
//  3. Recirculation-port bandwidth: the single recirc port sets the orbit
//     period and thus the wait time and request-table pressure — moving it
//     moves Fig. 16's knee.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Ablation 1 — PRE cloning vs refetch strawman");
  std::printf("%-18s %10s %12s %10s\n", "variant", "rx(MRPS)", "cache(MRPS)",
              "overflow");
  for (bool cloning : {true, false}) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = testbed::Scheme::kOrbitCache;
    cfg.enable_cloning = cloning;
    cfg.run_cache_updates = true;  // the refetch path runs via the CPU
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    std::printf("%-18s %10.2f %12.2f %9.2f%%\n",
                cloning ? "PRE cloning" : "refetch strawman", res.rx_rps / 1e6,
                res.cache_served_rps / 1e6, 100.0 * res.overflow_ratio);
    std::fflush(stdout);
  }

  benchutil::PrintHeader("Ablation 2 — request-table queue depth S");
  std::printf("%6s %10s %10s %10s\n", "S", "rx(MRPS)", "overflow",
              "sw p99(us)");
  for (size_t s : {1, 2, 4, 8, 16}) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = testbed::Scheme::kOrbitCache;
    cfg.orbit_queue_size = s;
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    std::printf("%6zu %10.2f %9.2f%% %10.1f\n", s, res.rx_rps / 1e6,
                100.0 * res.overflow_ratio,
                res.read_cached_latency.P99() / 1e3);
    std::fflush(stdout);
  }

  benchutil::PrintHeader(
      "Ablation 4 — write-through vs write-back (§3.10) across write ratios");
  std::printf("%-14s %8s %8s %8s %8s\n", "variant", "w=0.10", "w=0.25",
              "w=0.50", "w=1.00");
  for (bool wb : {false, true}) {
    std::printf("%-14s", wb ? "write-back" : "write-through");
    for (double w : {0.10, 0.25, 0.50, 1.00}) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = testbed::Scheme::kOrbitCache;
      cfg.write_ratio = w;
      cfg.write_back = wb;
      const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
      std::printf(" %8.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  benchutil::PrintHeader("Ablation 3 — recirculation-port bandwidth");
  std::printf("%10s %10s %10s %10s\n", "gbps", "rx(MRPS)", "overflow",
              "sw p99(us)");
  for (double gbps : {10.0, 25.0, 50.0, 100.0}) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = testbed::Scheme::kOrbitCache;
    cfg.asic.recirc_rate_gbps = gbps;
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    std::printf("%10.0f %10.2f %9.2f%% %10.1f\n", gbps, res.rx_rps / 1e6,
                100.0 * res.overflow_ratio,
                res.read_cached_latency.P99() / 1e3);
    std::fflush(stdout);
  }
  return 0;
}
