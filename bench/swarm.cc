// Randomized verification swarm: drives the testbed through a cloud of
// randomized (config × workload × fault-schedule) points with the
// shadow-oracle verification layer (src/verify/) enabled, and reports any
// point whose oracle, packet-conservation, or switch-invariant checks
// fire. Every point is a pure function of (--seed, point index), so a
// failure report is a one-line reproduction:
//
//   swarm                     # 20 points from the default seed
//   swarm --points 200        # a longer sweep
//   swarm --seed 7 --point 13 # re-run exactly the failing point
//
// Exit 0: every point clean. Exit 1: at least one violation (each printed
// with its seed, point index, config summary, and the verifier's report).
// Exit 2: usage errors.
#include <cstdio>
#include <exception>
#include <string>

#include "common/random.h"
#include "harness/flags.h"
#include "testbed/serialize.h"
#include "testbed/testbed.h"

namespace {

using orbit::Rng;
using orbit::kMicrosecond;
using orbit::kMillisecond;
using orbit::SimTime;
namespace fault = orbit::fault;
namespace testbed = orbit::testbed;

orbit::harness::Flags MakeFlags() {
  orbit::harness::Flags flags;
  flags.AddInt("points", 20, "N", "number of randomized points (default 20)");
  flags.AddUint64("seed", 1, "N", "swarm base seed (default 1)");
  flags.AddInt("point", -1, "I",
               "run only point index I (reproduce a reported failure)");
  flags.AddBool("fabric",
                "randomize leaf-spine fabric points (racks, spines, failover) "
                "with the fabric fault taxonomy instead of single-switch "
                "points");
  flags.AddBool("fail_fast",
                "abort a point at its first verifier violation (CI chaos "
                "profile); the abort is reported like any other failure");
  flags.AddBool("verbose", "print every point's config, not just failures");
  flags.AddBool("help", "this message").Alias("-h");
  return flags;
}

// One randomized point. Everything is drawn from `rng`, which is seeded
// from (base seed, point index) only — rerunning the same pair rebuilds
// the identical config, workload, and fault schedule.
testbed::TestbedConfig RandomConfig(Rng& rng) {
  testbed::TestbedConfig cfg;

  switch (rng.UniformU64(4)) {
    case 0: cfg.scheme = testbed::Scheme::kNoCache; break;
    case 1: cfg.scheme = testbed::Scheme::kNetCache; break;
    default: cfg.scheme = testbed::Scheme::kOrbitCache; break;
  }

  cfg.topo.num_clients = 1 + static_cast<int>(rng.UniformU64(3));
  cfg.topo.num_servers = 4 << rng.UniformU64(3);  // 4, 8, 16
  cfg.topo.server_rate_rps = 10'000 * (1 + rng.UniformU64(4));
  cfg.topo.client_rate_rps =
      cfg.topo.server_rate_rps * cfg.topo.num_servers *
      (0.5 + 1.5 * rng.UniformDouble());  // under- to over-saturated

  cfg.workload.num_keys = 20'000 * (1 + rng.UniformU64(5));
  // The workload generator supports theta in [0, 1).
  const double thetas[] = {0.0, 0.5, 0.9, 0.99};
  cfg.workload.zipf_theta = thetas[rng.UniformU64(4)];
  const double write_ratios[] = {0.0, 0.0, 0.05, 0.2, 0.5};
  cfg.workload.write_ratio = write_ratios[rng.UniformU64(5)];

  cfg.cache.orbit_cache_size = size_t{8} << rng.UniformU64(4);  // 8..64
  cfg.cache.orbit_capacity = 128;
  cfg.cache.orbit_queue_size = size_t{2} << rng.UniformU64(3);  // 2..8
  // Sized so the NetCache value tables fit the per-stage SRAM budget even
  // with the recirculating extended-value layout.
  cfg.cache.netcache_size = 500 * (1 + rng.UniformU64(2));

  // One protocol variation per point keeps every ablation covered without
  // stacking combinations the testbed doesn't support.
  if (cfg.scheme == testbed::Scheme::kOrbitCache) {
    switch (rng.UniformU64(6)) {
      case 0: cfg.cache.epoch_guard = false; break;
      case 1: cfg.cache.enable_cloning = false; break;
      case 2: cfg.cache.write_back = true; break;
      case 3: cfg.cache.multi_packet = true; break;
      case 4:
        cfg.control.run_cache_updates = true;
        cfg.control.update_period = 20 * kMillisecond;
        cfg.control.report_period = 20 * kMillisecond;
        break;
      default: break;  // paper-default protocol
    }
  } else if (cfg.scheme == testbed::Scheme::kNetCache) {
    cfg.cache.netcache_recirc_read = rng.Bernoulli(0.3);
  }

  cfg.client.max_retries = static_cast<int>(rng.UniformU64(3));
  cfg.client.request_timeout = 10 * kMillisecond;

  cfg.warmup = 10 * kMillisecond;
  cfg.duration = (30 + 10 * rng.UniformU64(3)) * kMillisecond;

  // Fault schedule: none / switch reset / server crash+restart / bursty
  // server-link loss. Faults land inside the measurement window so the
  // oracle sees the recovery path, not just the steady state.
  const SimTime mid = cfg.warmup + cfg.duration / 3;
  switch (rng.UniformU64(4)) {
    case 0:
      break;
    case 1:
      cfg.fault = fault::SwitchResetAt(mid);
      break;
    case 2: {
      const int victim = static_cast<int>(
          rng.UniformU64(static_cast<uint64_t>(cfg.topo.num_servers)));
      cfg.fault = fault::ServerCrashAt(victim, mid, mid + 10 * kMillisecond);
      break;
    }
    default:
      cfg.fault.server_burst_loss.p_enter_bad = 0.01;
      cfg.fault.server_burst_loss.p_exit_bad = 0.2;
      cfg.fault.server_burst_loss.loss_bad = 0.5;
      break;
  }

  cfg.verify.enabled = true;
  cfg.verify.fail_fast = false;  // collect the report; the swarm decides
  return cfg;
}

// One randomized leaf–spine point (--fabric): a small fabric with the
// fabric fault taxonomy — uplink down/up, leaf and spine crashes, gray
// links, rack partitions, bursty uplinks — and probe-based failover on
// half the points. A separate generator keeps the default point stream
// byte-identical, so existing `swarm --seed S --point I` reproductions
// are unaffected by the fabric axis.
testbed::TestbedConfig RandomFabricConfig(Rng& rng) {
  testbed::TestbedConfig cfg;

  switch (rng.UniformU64(4)) {
    case 0: cfg.scheme = testbed::Scheme::kNoCache; break;
    case 1: cfg.scheme = testbed::Scheme::kNetCache; break;
    default: cfg.scheme = testbed::Scheme::kOrbitCache; break;
  }

  const int racks = 2 << rng.UniformU64(2);  // 2, 4, 8
  const int spines = 1 + static_cast<int>(rng.UniformU64(2));
  const int servers_per_rack = 2 << rng.UniformU64(2);  // 2, 4, 8
  cfg.topo.fabric.num_racks = racks;
  cfg.topo.fabric.num_spines = spines;
  cfg.topo.num_servers = racks * servers_per_rack;
  cfg.topo.num_clients = racks;  // one client per rack
  cfg.topo.server_rate_rps = 10'000 * (1 + rng.UniformU64(4));
  cfg.topo.client_rate_rps =
      cfg.topo.server_rate_rps * cfg.topo.num_servers *
      (0.5 + 1.5 * rng.UniformDouble());  // under- to over-saturated

  // Failover on half the points: faults then exercise detection +
  // rerouting; without it the same faults exercise blackhole accounting.
  if (rng.UniformU64(2) == 0) {
    cfg.topo.fabric.failover = true;
    cfg.topo.fabric.probe_interval = 100 * kMicrosecond;
    cfg.topo.fabric.detection_window =
        static_cast<SimTime>(1 + rng.UniformU64(4)) * 500 * kMicrosecond;
  }

  cfg.workload.num_keys = 20'000 * (1 + rng.UniformU64(5));
  const double thetas[] = {0.0, 0.5, 0.9, 0.99};
  cfg.workload.zipf_theta = thetas[rng.UniformU64(4)];
  const double write_ratios[] = {0.0, 0.0, 0.05, 0.2, 0.5};
  cfg.workload.write_ratio = write_ratios[rng.UniformU64(5)];

  cfg.cache.orbit_cache_size = size_t{8} << rng.UniformU64(4);  // per leaf
  cfg.cache.orbit_capacity = 128;
  cfg.cache.orbit_queue_size = size_t{2} << rng.UniformU64(3);
  cfg.cache.netcache_size = 500 * (1 + rng.UniformU64(2));

  cfg.client.max_retries = static_cast<int>(rng.UniformU64(3));
  cfg.client.request_timeout = 10 * kMillisecond;

  cfg.warmup = 10 * kMillisecond;
  cfg.duration = (30 + 10 * rng.UniformU64(3)) * kMillisecond;

  // Fabric fault axis. Faults land inside the measurement window and heal
  // before it ends, so the oracle sees outage, failover, and recovery.
  const SimTime mid = cfg.warmup + cfg.duration / 3;
  const SimTime heal = cfg.warmup + 2 * cfg.duration / 3;
  const int rack = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(racks)));
  const int spine =
      static_cast<int>(rng.UniformU64(static_cast<uint64_t>(spines)));
  switch (rng.UniformU64(7)) {
    case 0:
      break;  // fault-free fabric point
    case 1:
      cfg.fault = fault::FabricLinkDownAt(rack, spine, mid, heal);
      break;
    case 2:
      cfg.fault = fault::LeafCrashAt(rack, mid, heal,
                                     /*rebuild_delay=*/2 * kMillisecond);
      break;
    case 3:
      cfg.fault = fault::SpineCrashAt(spine, mid, heal);
      break;
    case 4:
      cfg.fault = fault::LinkDegradeAt(
          rack, spine, /*dir=*/static_cast<int>(rng.UniformU64(2)),
          /*loss=*/0.3, /*extra_latency=*/20 * kMicrosecond, mid, heal);
      break;
    case 5:
      cfg.fault = fault::RackPartitionAt(rack, mid, heal);
      break;
    default:
      cfg.fault.fabric_burst_loss.p_enter_bad = 0.01;
      cfg.fault.fabric_burst_loss.p_exit_bad = 0.2;
      cfg.fault.fabric_burst_loss.loss_bad = 0.5;
      break;
  }

  cfg.verify.enabled = true;
  cfg.verify.fail_fast = false;  // main() flips this under --fail_fast
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  orbit::harness::Flags flags = MakeFlags();
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 MakeFlags().Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::fprintf(stderr,
                 "usage: swarm [--points N] [--seed N] [--point I] [--fabric] "
                 "[--fail_fast]\n%s",
                 MakeFlags().Usage().c_str());
    return 0;
  }
  const int points = flags.GetInt("points");
  const uint64_t base_seed = flags.GetUint64("seed");
  const int only_point = flags.GetInt("point");
  const bool fabric = flags.GetBool("fabric");
  const bool fail_fast = flags.GetBool("fail_fast");
  const bool verbose = flags.GetBool("verbose");
  if (points < 1) {
    std::fprintf(stderr, "bad --points value: %s\n", flags.Raw("points").c_str());
    return 2;
  }

  int failures = 0;
  int ran = 0;
  // A "--point I" reproduction must work with the default --points, so the
  // sweep range stretches to cover the requested index.
  const int limit = only_point >= 0 && only_point + 1 > points
                        ? only_point + 1
                        : points;
  for (int i = 0; i < limit; ++i) {
    if (only_point >= 0 && i != only_point) continue;
    // Seed the point generator and the testbed from disjoint streams so
    // adding config axes never reshuffles the workloads of later points.
    Rng rng(base_seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(i));
    testbed::TestbedConfig cfg =
        fabric ? RandomFabricConfig(rng) : RandomConfig(rng);
    if (fail_fast) cfg.verify.fail_fast = true;
    cfg.seed = base_seed ^ (0xabcd0000ull + static_cast<uint64_t>(i));
    ++ran;

    std::string outcome;
    uint64_t violations = 0;
    std::string report;
    try {
      const testbed::TestbedResult res = testbed::RunTestbed(cfg);
      violations = res.verify_violations;
      report = res.verify_report;
      outcome = violations == 0 ? "ok" : "VIOLATIONS";
    } catch (const std::exception& e) {
      violations = 1;
      report = std::string("run aborted: ") + e.what();
      outcome = "ABORTED";
    }

    if (violations > 0 || verbose) {
      std::printf("point %d seed %llu [%s]: %s\n", i,
                  static_cast<unsigned long long>(base_seed),
                  testbed::ConfigFingerprint(cfg).c_str(), outcome.c_str());
      std::printf("  config: %s\n", testbed::ConfigJson(cfg).Dump().c_str());
    }
    if (violations > 0) {
      ++failures;
      std::printf("  reproduce: swarm --seed %llu --point %d%s\n%s\n",
                  static_cast<unsigned long long>(base_seed), i,
                  fabric ? " --fabric" : "", report.c_str());
    }
  }

  if (ran == 0) {
    std::fprintf(stderr, "--point %d did not run (negative index?)\n",
                 only_point);
    return 2;
  }
  std::printf("swarm: %d/%d points clean (seed %llu)\n", ran - failures, ran,
              static_cast<unsigned long long>(base_seed));
  return failures > 0 ? 1 : 0;
}
