// Figure 14: performance with production (Twitter-like) workloads A-E.
//
// Paper result: OrbitCache is best on all five; the gap is smallest on
// workload A (NetCache can cache 95% of items and the write ratio is
// relatively high) and largest on workload E (only 1% cacheable).
#include "bench/bench_util.h"
#include "workload/twitter.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader(
      "Fig. 14 — saturated throughput (MRPS) on production workloads");
  std::printf("%-12s", "scheme");
  for (const auto& p : wl::Fig14Profiles())
    std::printf("  %s(%s,w=%.2f)", p.id.c_str(), p.cluster.c_str(),
                p.write_ratio);
  std::printf("\n");

  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (const auto& profile : wl::Fig14Profiles()) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = scheme;
      cfg.twitter = &profile;
      const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
      std::printf(" %17.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
