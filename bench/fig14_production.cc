// Figure 14: production (Twitter-like) workloads A-E.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig14Production()}, argc, argv);
}
