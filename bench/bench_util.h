// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig* binary prints the paper's series as aligned text rows. The
// default ("quick") mode uses a reduced key space and shorter windows so
// the whole bench suite runs in minutes; pass --full for paper-scale
// parameters (10M keys, longer measurement windows).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "testbed/testbed.h"

namespace orbit::benchutil {

struct Mode {
  bool full = false;
};

inline Mode ParseArgs(int argc, char** argv) {
  Mode mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) mode.full = true;
  }
  return mode;
}

// The paper's §5.1 testbed: 4 client nodes, 32 emulated servers at 100K
// RPS, 10M keys, zipf-0.99, bimodal 82%/18% 64B/1024B values, OrbitCache
// preloaded with the 128 hottest items and NetCache with the cacheable
// subset of the 10K hottest.
inline testbed::TestbedConfig PaperConfig(const Mode& mode) {
  testbed::TestbedConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 32;
  cfg.server_rate_rps = 100'000;
  cfg.client_rate_rps = 8'000'000;
  cfg.num_keys = mode.full ? 10'000'000 : 1'000'000;
  cfg.zipf_theta = 0.99;
  cfg.value_dist = wl::ValueDist::PaperDefault();
  cfg.orbit_cache_size = 128;
  cfg.netcache_size = 10'000;
  cfg.warmup = mode.full ? 100 * kMillisecond : 50 * kMillisecond;
  cfg.duration = mode.full ? 500 * kMillisecond : 150 * kMillisecond;
  cfg.seed = 42;
  return cfg;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace orbit::benchutil
