// Back-compat shims over the experiment harness (src/harness/).
//
// The fig* binaries are now thin drivers over declarative specs
// (bench/experiments.cc) and parse their flags through harness::ParseCli;
// this header survives as the stable "give me the paper's §5.1 testbed"
// entry point used by tests and one-off tools. The scale knobs themselves
// live in exactly one place: harness::PaperScaleProfile.
#pragma once

#include <cstdio>
#include <cstring>

#include "harness/spec.h"
#include "testbed/testbed.h"

namespace orbit::benchutil {

struct Mode {
  bool full = false;
  bool quick = false;

  harness::Scale scale() const {
    if (full) return harness::Scale::kFull;
    if (quick) return harness::Scale::kQuick;
    return harness::Scale::kDefault;
  }
};

inline Mode ParseArgs(int argc, char** argv) {
  Mode mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) mode.full = true;
    if (std::strcmp(argv[i], "--quick") == 0) mode.quick = true;
  }
  return mode;
}

// The paper's §5.1 testbed: 4 client nodes, 32 emulated servers at 100K
// RPS, 10M keys, zipf-0.99, bimodal 82%/18% 64B/1024B values, OrbitCache
// preloaded with the 128 hottest items and NetCache with the cacheable
// subset of the 10K hottest. Default mode shrinks only the key space and
// the time windows (see harness::PaperScaleProfile).
inline testbed::TestbedConfig PaperConfig(const Mode& mode) {
  return harness::ScaledPaperConfig(mode.scale());
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace orbit::benchutil
