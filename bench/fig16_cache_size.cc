// Figure 16: impact of the OrbitCache cache size.
//
// Paper result: throughput saturates around 128 cached items; the switch
// tail latency climbs past 64-128 items (longer orbits between passes);
// and from 256 items the overflow-request ratio takes off because the
// request-table queues fill while cache packets crawl around the longer
// recirculation ring. The knee is the architecture's central trade-off.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Fig. 16 — impact of cache size (OrbitCache)");
  std::printf("%8s %10s %12s %12s %10s %10s %10s\n", "entries", "rx(MRPS)",
              "cache(MRPS)", "server(MRPS)", "sw p50(us)", "sw p99(us)",
              "overflow");

  const size_t sizes[] = {8, 16, 32, 64, 128, 256, 512, 1024};
  for (size_t size : sizes) {
    testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
    cfg.scheme = testbed::Scheme::kOrbitCache;
    cfg.orbit_cache_size = size;
    cfg.orbit_capacity = 1024;
    const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
    std::printf("%8zu %10.2f %12.2f %12.2f %10.1f %10.1f %9.2f%%\n", size,
                res.rx_rps / 1e6, res.cache_served_rps / 1e6,
                res.server_served_rps / 1e6,
                res.read_cached_latency.Median() / 1e3,
                res.read_cached_latency.P99() / 1e3,
                100.0 * res.overflow_ratio);
    std::fflush(stdout);
  }
  return 0;
}
