// Figure 16: impact of the OrbitCache cache size.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig16CacheSize()}, argc, argv);
}
