// Extra: impact of key size (the paper omits this figure, noting the
// result "is similar to the result in the impact of value size" — §5.3).
//
// Expected shape: OrbitCache keeps balancing with keys far beyond the
// 16-byte match-key limit (they ride inside the cache packet; only their
// 16-byte hash is matched on), with a mild throughput drop as packets
// grow. NetCache cannot even install entries for wide keys — the lookup
// table's match width is a hardware constant — so it degrades to NoCache.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Extra — impact of key size (64B values)");
  std::printf("%10s %12s %12s %14s\n", "key(B)", "orbit MRPS",
              "netcache MRPS", "nc entries");

  for (uint32_t ks : {16u, 32u, 64u, 128u}) {
    testbed::TestbedConfig base = benchutil::PaperConfig(mode);
    base.key_size = ks;
    base.value_dist = wl::ValueDist::Fixed(64);

    testbed::TestbedConfig ocfg = base;
    ocfg.scheme = testbed::Scheme::kOrbitCache;
    const testbed::TestbedResult orbit = testbed::FindSaturation(ocfg).result;

    testbed::TestbedConfig ncfg = base;
    ncfg.scheme = testbed::Scheme::kNetCache;
    const testbed::TestbedResult net = testbed::FindSaturation(ncfg).result;

    std::printf("%10u %12.2f %12.2f %14zu\n", ks, orbit.rx_rps / 1e6,
                net.rx_rps / 1e6, net.cache_entries);
    std::fflush(stdout);
  }
  std::printf("\n(NetCache entry count collapses to 0 beyond 16B keys: the "
              "match-key width is burned into the ASIC)\n");
  return 0;
}
