// Extra figure: impact of key size.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::ExtraKeySize()}, argc, argv);
}
