// Figure 13: scalability with the number of storage servers (50K RPS per
// server so the servers stay the bottleneck even at 64 of them).
//
// Paper result: OrbitCache's throughput grows almost linearly with server
// count and its balancing efficiency stays near 1.0; the baselines are
// pinned by their hottest partitions.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace orbit;
  const auto mode = benchutil::ParseArgs(argc, argv);

  benchutil::PrintHeader("Fig. 13 — scalability (zipf-0.99, 50K RPS/server)");
  const int server_counts[] = {8, 16, 32, 64};
  const testbed::Scheme schemes[] = {testbed::Scheme::kNoCache,
                                     testbed::Scheme::kNetCache,
                                     testbed::Scheme::kOrbitCache};

  std::printf("(a) saturated throughput (MRPS)\n%-12s", "scheme");
  for (int n : server_counts) std::printf(" %8d", n);
  std::printf("\n");
  std::vector<std::vector<double>> eff(3);
  int si = 0;
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (int n : server_counts) {
      testbed::TestbedConfig cfg = benchutil::PaperConfig(mode);
      cfg.scheme = scheme;
      cfg.num_servers = n;
      cfg.server_rate_rps = 50'000;  // paper's Fig. 13 rate limit
      const testbed::TestbedResult res = testbed::FindSaturation(cfg).result;
      std::printf(" %8.2f", res.rx_rps / 1e6);
      std::fflush(stdout);
      eff[si].push_back(res.balancing_efficiency);
    }
    std::printf("\n");
    ++si;
  }

  std::printf("\n(b) balancing efficiency (min/max server throughput)\n%-12s",
              "scheme");
  for (int n : server_counts) std::printf(" %8d", n);
  std::printf("\n");
  si = 0;
  for (auto scheme : schemes) {
    std::printf("%-12s", testbed::SchemeName(scheme));
    for (double e : eff[si]) std::printf(" %8.2f", e);
    std::printf("\n");
    ++si;
  }
  return 0;
}
