// Figure 13: scalability with the number of storage servers.
// Spec definition (sweep axes, paper commentary): bench/experiments.cc.
#include "bench/experiments.h"
#include "harness/cli.h"

int main(int argc, char** argv) {
  return orbit::harness::HarnessMain({ orbit::benchexp::Fig13Scalability()}, argc, argv);
}
