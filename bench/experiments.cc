#include "bench/experiments.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "proto/message.h"
#include "testbed/serialize.h"
#include "workload/twitter.h"
#include "workload/value_dist.h"
#include "workload/ycsb.h"

namespace orbit::benchexp {

using harness::ExperimentSpec;
using harness::JsonValue;
using harness::MetricsRecord;
using harness::NumericAxis;
using harness::ParamAxis;
using harness::PaperBaseConfig;
using harness::SchemeAxis;

namespace {

// First record whose params contain every (name, label) pair given.
const MetricsRecord* FindRecord(
    const std::vector<MetricsRecord>& records,
    std::initializer_list<std::pair<const char*, const char*>> match) {
  for (const auto& r : records) {
    bool all = true;
    for (const auto& [name, label] : match) {
      bool found = false;
      for (const auto& [n, l] : r.params)
        if (n == name && l == label) {
          found = true;
          break;
        }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all && r.ok()) return &r;
  }
  return nullptr;
}

const std::vector<testbed::Scheme> kAllSchemes = {
    testbed::Scheme::kNoCache, testbed::Scheme::kNetCache,
    testbed::Scheme::kOrbitCache};

}  // namespace

// §2.1 motivation analysis: how many items of 54 Twitter-like workloads
// could NetCache-class systems cache (16B keys / 128B values), vs
// OrbitCache's single-packet limit? Paper: 3.7% of workloads have >80% of
// keys ≤ 16B, 38.9% have >80% of values ≤ 128B, 85% have <10% cacheable
// items (77.8% essentially none), only 2 exceed 50% cacheable.
ExperimentSpec MotivationCacheability() {
  ExperimentSpec spec;
  spec.name = "motivation_cacheability";
  spec.title = "§2.1 — cacheability of 54 Twitter-like workloads";
  spec.apply_paper_scale = false;
  spec.run = [](const harness::PointRun&, harness::SaturationCache&) {
    const auto workloads = wl::MotivationWorkloads();
    const int kSamples = 20000;
    const wl::CacheabilityLimits netcache_limits;  // 16B keys, 128B values
    const wl::CacheabilityLimits key_only{16, UINT32_MAX, 0};
    const wl::CacheabilityLimits value_only{UINT32_MAX, 128, 0};
    const wl::CacheabilityLimits orbit_limits{UINT32_MAX, UINT32_MAX,
                                              proto::kMaxPayloadBytes};
    int small_keys = 0, small_values = 0, none = 0, under10 = 0, over50 = 0;
    double netcache_sum = 0, orbit_sum = 0;
    for (const auto& w : workloads) {
      const double kf = wl::CacheableFraction(w, key_only, kSamples, 1);
      const double vf = wl::CacheableFraction(w, value_only, kSamples, 2);
      const double nc = wl::CacheableFraction(w, netcache_limits, kSamples, 3);
      const double oc = wl::CacheableFraction(w, orbit_limits, kSamples, 4);
      if (kf > 0.8) ++small_keys;
      if (vf > 0.8) ++small_values;
      if (nc < 1e-4) ++none;
      if (nc < 0.10) ++under10;
      if (nc > 0.50) ++over50;
      netcache_sum += nc;
      orbit_sum += oc;
    }
    const double n = static_cast<double>(workloads.size());
    JsonValue m = JsonValue::MakeObject();
    m.Set("workloads", static_cast<int64_t>(workloads.size()));
    m.Set("pct_small_keys", 100.0 * small_keys / n);
    m.Set("pct_small_values", 100.0 * small_values / n);
    m.Set("pct_under10_cacheable", 100.0 * under10 / n);
    m.Set("pct_zero_cacheable", 100.0 * none / n);
    m.Set("n_over50_cacheable", over50);
    m.Set("mean_netcacheable_pct", 100.0 * netcache_sum / n);
    m.Set("mean_orbit_cacheable_pct", 100.0 * orbit_sum / n);
    return m;
  };
  spec.table_metrics = {"workloads",
                        "pct_small_keys",
                        "pct_small_values",
                        "pct_under10_cacheable",
                        "pct_zero_cacheable",
                        "n_over50_cacheable",
                        "mean_orbit_cacheable_pct"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    if (rs.empty() || !rs[0].ok()) return;
    std::printf("paper: 3.7%% / 38.9%% / 85%% / 77.8%% / 2 workloads; "
                "measured above.\n");
  };
  return spec;
}

// Figure 9: throughput with different key access distributions. Paper:
// OrbitCache sustains high throughput regardless of skew; at zipf-0.99 it
// beats NoCache by ~3.6x and NetCache by ~2x.
ExperimentSpec Fig09Skewness() {
  ExperimentSpec spec;
  spec.name = "fig09_skewness";
  spec.title = "Fig. 9 — saturated throughput (MRPS) vs key skewness";
  spec.axes = {SchemeAxis(kAllSchemes),
               NumericAxis("zipf_theta", {0.0, 0.90, 0.95, 0.99},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.zipf_theta = v;
                           })};
  spec.table_metrics = {"rx_mrps", "balancing_efficiency"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    const MetricsRecord* orbit =
        FindRecord(rs, {{"scheme", "OrbitCache"}, {"zipf_theta", "0.99"}});
    const MetricsRecord* nocache =
        FindRecord(rs, {{"scheme", "NoCache"}, {"zipf_theta", "0.99"}});
    const MetricsRecord* netcache =
        FindRecord(rs, {{"scheme", "NetCache"}, {"zipf_theta", "0.99"}});
    if (orbit == nullptr || nocache == nullptr || netcache == nullptr) return;
    std::printf("zipf-0.99 speedup: OrbitCache/NoCache = %.2fx (paper: "
                "3.59x), OrbitCache/NetCache = %.2fx (paper: 1.95x)\n",
                orbit->Metric("rx_mrps") / nocache->Metric("rx_mrps"),
                orbit->Metric("rx_mrps") / netcache->Metric("rx_mrps"));
  };
  return spec;
}

// Figure 10: load on individual storage servers (zipf-0.99, 32 servers).
// Paper: baselines leave hot-partition servers overloaded; OrbitCache's
// per-server loads are nearly flat.
ExperimentSpec Fig10ServerLoads() {
  ExperimentSpec spec;
  spec.name = "fig10_server_loads";
  spec.title = "Fig. 10 — per-server load (KRPS) at saturation, zipf-0.99";
  spec.axes = {SchemeAxis(kAllSchemes)};
  spec.include_server_loads = true;
  spec.table_metrics = {"rx_mrps", "balancing_efficiency"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    for (const auto& r : rs) {
      if (!r.ok()) continue;
      const JsonValue* loads = r.metrics.Find("server_loads");
      const double secs = r.Metric("window_s");
      if (loads == nullptr || !(secs > 0)) continue;
      std::printf("%-12s", r.params.empty() ? "?" : r.params[0].second.c_str());
      for (size_t i = 0; i < loads->array().size(); ++i) {
        if (i % 8 == 0 && i > 0) std::printf("\n%-12s", "");
        std::printf(" %6.1f", loads->array()[i].AsDouble() / secs / 1e3);
      }
      std::printf("\n%-12s min=%.1fK max=%.1fK balancing-efficiency=%.2f\n",
                  "", r.Metric("server_load_min") / secs / 1e3,
                  r.Metric("server_load_max") / secs / 1e3,
                  r.Metric("balancing_efficiency"));
    }
  };
  return spec;
}

// Figure 11: median and 99th-percentile read latency vs Rx throughput.
// Paper: OrbitCache reaches the highest throughput before its latency
// knee; its median sits ~1us above NetCache but far below the saturating
// baselines.
ExperimentSpec Fig11LatencyThroughput() {
  ExperimentSpec spec;
  spec.name = "fig11_latency_throughput";
  spec.title = "Fig. 11 — read latency vs Rx throughput";
  spec.axes = {SchemeAxis(kAllSchemes),
               NumericAxis("load_fraction",
                           {0.2, 0.4, 0.6, 0.8, 0.95, 1.05}, nullptr)};
  spec.run = harness::FractionOfSaturationRun("load_fraction");
  spec.table_metrics = {"rx_mrps", "read_p50_us", "read_p99_us", "loss"};
  return spec;
}

// Figure 12: throughput vs write ratio. Paper: OrbitCache's gain shrinks
// as writes grow and converges to NoCache at 100% writes.
ExperimentSpec Fig12WriteRatio() {
  ExperimentSpec spec;
  spec.name = "fig12_write_ratio";
  spec.title =
      "Fig. 12 — saturated throughput (MRPS) vs write ratio, zipf-0.99";
  spec.axes = {SchemeAxis(kAllSchemes),
               NumericAxis("write_ratio", {0.0, 0.1, 0.25, 0.5, 0.75, 1.0},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.write_ratio = v;
                           })};
  spec.table_metrics = {"rx_mrps"};
  return spec;
}

// Figure 13: scalability with the number of storage servers (50K RPS per
// server so the servers stay the bottleneck even at 64). Paper: OrbitCache
// grows almost linearly; baselines are pinned by their hottest partitions.
ExperimentSpec Fig13Scalability() {
  ExperimentSpec spec;
  spec.name = "fig13_scalability";
  spec.title = "Fig. 13 — scalability (zipf-0.99, 50K RPS/server)";
  spec.base.topo.server_rate_rps = 50'000;
  spec.axes = {SchemeAxis(kAllSchemes),
               NumericAxis("num_servers", {8, 16, 32, 64},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.topo.num_servers = static_cast<int>(v);
                           })};
  spec.table_metrics = {"rx_mrps", "balancing_efficiency"};
  return spec;
}

// Figure 14: production (Twitter-like) workloads A-E. Paper: OrbitCache is
// best on all five; the gap is smallest on A (95% cacheable, higher write
// ratio) and largest on E (1% cacheable).
ExperimentSpec Fig14Production() {
  ExperimentSpec spec;
  spec.name = "fig14_production";
  spec.title = "Fig. 14 — saturated throughput (MRPS) on production workloads";
  ParamAxis workloads;
  workloads.name = "workload";
  const auto& profiles = wl::Fig14Profiles();  // static storage
  for (size_t i = 0; i < profiles.size(); ++i) {
    const wl::TwitterProfile* p = &profiles[i];
    workloads.params.push_back(
        {p->id, static_cast<double>(i),
         [p](testbed::TestbedConfig& cfg) { cfg.workload.twitter = p; }});
  }
  spec.axes = {SchemeAxis(kAllSchemes), std::move(workloads)};
  spec.table_metrics = {"rx_mrps"};
  return spec;
}

// Figure 15: latency breakdown — switch-served vs server-served requests
// as throughput rises. Paper: OrbitCache's switch-handled median sits
// slightly above NetCache's and its switch tail grows with load yet stays
// in the tens of microseconds while server tails blow up at saturation.
ExperimentSpec Fig15LatencyBreakdown() {
  ExperimentSpec spec;
  spec.name = "fig15_latency_breakdown";
  spec.title = "Fig. 15 — latency breakdown (us) vs throughput";
  spec.axes = {SchemeAxis({testbed::Scheme::kNetCache,
                           testbed::Scheme::kOrbitCache}),
               NumericAxis("load_fraction", {0.25, 0.5, 0.75, 1.0}, nullptr)};
  spec.run = harness::FractionOfSaturationRun("load_fraction");
  spec.table_metrics = {"rx_mrps",
                        "read_cached.p50_us",
                        "read_cached.p99_us",
                        "read_server.p50_us",
                        "read_server.p99_us",
                        "switch_resident.p99_us"};
  return spec;
}

// Figure 16: impact of the OrbitCache cache size. Paper: throughput
// saturates around 128 items, the switch tail climbs past 64-128, and the
// overflow ratio takes off from 256 as the longer recirculation ring slows
// each packet's orbit.
ExperimentSpec Fig16CacheSize() {
  ExperimentSpec spec;
  spec.name = "fig16_cache_size";
  spec.title = "Fig. 16 — impact of cache size (OrbitCache)";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.base.cache.orbit_capacity = 1024;
  spec.axes = {NumericAxis("entries", {8, 16, 32, 64, 128, 256, 512, 1024},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.cache.orbit_cache_size = static_cast<size_t>(v);
                           })};
  spec.table_metrics = {"rx_mrps",           "cache_mrps",
                        "server_mrps",       "read_cached.p50_us",
                        "read_cached.p99_us", "overflow_ratio"};
  return spec;
}

// Figure 17 (a,b): impact of item size with 100% fixed-size values — the
// worst case for OrbitCache. Paper: only a mild throughput drop even for
// MTU-sized items, and balancing efficiency stays high.
ExperimentSpec Fig17ItemSize() {
  ExperimentSpec spec;
  spec.name = "fig17_item_size";
  spec.title = "Fig. 17(a,b) — impact of item size (OrbitCache, 128 entries)";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.axes = {NumericAxis("value_size", {64, 128, 256, 512, 1024, 1416},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.value_dist =
                                 wl::ValueDist::Fixed(static_cast<uint32_t>(v));
                           })};
  spec.table_metrics = {"rx_mrps", "balancing_efficiency"};
  return spec;
}

// Figure 17 (c): the effective cache size — the entry count with the best
// throughput — shrinks as values grow, because larger cache packets
// stretch the orbit.
ExperimentSpec Fig17EffectiveSize() {
  ExperimentSpec spec;
  spec.name = "fig17_effective_size";
  spec.title = "Fig. 17(c) — effective cache size vs item size";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  // Sweep points use a shorter window and a looser saturation search; the
  // panel only needs the argmax.
  spec.scale_fn = [](testbed::TestbedConfig& cfg, harness::Scale) {
    cfg.duration = cfg.duration / 2;
  };
  spec.loss_tolerance = 0.05;
  spec.max_corrections = 1;
  spec.axes = {NumericAxis("value_size", {64, 128, 256, 512, 1024, 1416},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.value_dist =
                                 wl::ValueDist::Fixed(static_cast<uint32_t>(v));
                           }),
               NumericAxis("entries", {16, 32, 64, 128, 256},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.cache.orbit_cache_size = static_cast<size_t>(v);
                           })};
  spec.table_metrics = {"rx_mrps"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    // label → (best entries label, best rx), in first-seen order.
    std::vector<std::pair<std::string, std::pair<std::string, double>>> best;
    for (const auto& r : rs) {
      if (!r.ok() || r.params.size() < 2) continue;
      const std::string& value = r.params[0].second;
      const std::string& entries = r.params[1].second;
      const double rx = r.Metric("rx_mrps");
      auto it = std::find_if(best.begin(), best.end(),
                             [&](const auto& e) { return e.first == value; });
      if (it == best.end())
        best.push_back({value, {entries, rx}});
      else if (rx > it->second.second)
        it->second = {entries, rx};
    }
    std::printf("best-throughput entry count per value size:\n");
    for (const auto& [value, e] : best)
      std::printf("  %6sB -> %4s entries (%.2f MRPS)\n", value.c_str(),
                  e.first.c_str(), e.second);
  };
  return spec;
}

// Figure 18: dynamic workloads — the "hot-in" pattern swaps the popularity
// of the hottest and coldest items periodically, instantly staling the
// whole cache. Paper: throughput dips at each swap and recovers within a
// few seconds as the controller installs the new hot set; the
// overflow-request ratio spikes at the swap and settles after fetches
// complete. The paper runs 60s/10s swaps on 4 servers; smaller scales
// compress the timeline (the dip-and-recover dynamics are unchanged). We
// keep a finite per-server capacity (the paper's real CPUs have one too)
// so the post-swap miss traffic can actually overload the hot partition.
ExperimentSpec Fig18Dynamic() {
  ExperimentSpec spec;
  spec.name = "fig18_dynamic";
  spec.title = "Fig. 18 — hot-in dynamic workload (OrbitCache)";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.base.topo.num_clients = 4;
  spec.base.topo.num_servers = 4;
  spec.base.topo.server_rate_rps = 100'000;
  spec.base.topo.client_rate_rps = 450'000;
  spec.base.workload.hot_in = true;
  spec.base.workload.hot_in_count = 128;
  spec.base.control.run_cache_updates = true;  // the experiment is about updates
  spec.base.control.update_period = 500 * kMillisecond;
  spec.base.control.report_period = 500 * kMillisecond;
  spec.scale_fn = [](testbed::TestbedConfig& cfg, harness::Scale scale) {
    cfg.warmup = 0;  // the full timeline is the result
    switch (scale) {
      case harness::Scale::kFull:
        cfg.workload.hot_in_period = 10 * kSecond;
        cfg.duration = 60 * kSecond;
        cfg.timeline_bin = kSecond;
        break;
      case harness::Scale::kDefault:
        cfg.workload.hot_in_period = 2 * kSecond;
        cfg.duration = 12 * kSecond;
        cfg.timeline_bin = 200 * kMillisecond;
        break;
      case harness::Scale::kQuick:
        cfg.workload.hot_in_period = kSecond;
        cfg.duration = 6 * kSecond;
        cfg.timeline_bin = 200 * kMillisecond;
        break;
    }
  };
  spec.run = harness::FixedLoadRun();
  spec.include_timelines = true;
  spec.table_metrics = {"rx_mrps", "overflow_ratio", "collisions",
                        "stale_reads"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    if (rs.empty() || !rs[0].ok()) return;
    const JsonValue* tput = rs[0].metrics.Find("throughput_timeline_rps");
    const JsonValue* ovf = rs[0].metrics.Find("overflow_ratio_timeline");
    const double bin = rs[0].Metric("timeline_bin_s");
    if (tput == nullptr || ovf == nullptr || !(bin > 0)) return;
    std::printf("%8s %12s %12s\n", "t(s)", "rx(KRPS)", "overflow");
    const size_t n = std::min(tput->array().size(), ovf->array().size());
    for (size_t i = 0; i < n; ++i)
      std::printf("%8.1f %12.1f %11.2f%%\n", static_cast<double>(i) * bin,
                  tput->array()[i].AsDouble() / 1e3,
                  100.0 * ovf->array()[i].AsDouble());
  };
  return spec;
}

// Ablation 1 — PRE cloning vs the §3.5 refetch strawman (serve one
// request, then refetch the cache packet from the server): cloning is what
// lets one fetch serve arbitrarily many requests.
ExperimentSpec AblationCloning() {
  ExperimentSpec spec;
  spec.name = "ablation_cloning";
  spec.title = "Ablation — PRE cloning vs refetch strawman";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.base.control.run_cache_updates = true;  // the refetch path runs via the CPU
  ParamAxis variant;
  variant.name = "variant";
  variant.params = {
      {"PRE-cloning", 0,
       [](testbed::TestbedConfig& cfg) { cfg.cache.enable_cloning = true; }},
      {"refetch-strawman", 1,
       [](testbed::TestbedConfig& cfg) { cfg.cache.enable_cloning = false; }}};
  spec.axes = {std::move(variant)};
  spec.table_metrics = {"rx_mrps", "cache_mrps", "overflow_ratio"};
  return spec;
}

// Ablation 2 — request-table queue depth S: deeper queues absorb bursts
// for hot keys; shallow queues overflow to the servers.
ExperimentSpec AblationQueueDepth() {
  ExperimentSpec spec;
  spec.name = "ablation_queue_depth";
  spec.title = "Ablation — request-table queue depth S";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.axes = {NumericAxis("queue_depth", {1, 2, 4, 8, 16},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.cache.orbit_queue_size = static_cast<size_t>(v);
                           })};
  spec.table_metrics = {"rx_mrps", "overflow_ratio", "read_cached.p99_us"};
  return spec;
}

// Ablation — write-through vs write-back (§3.10) across write ratios.
// Write-back holds most of the read-only gain regardless of write ratio.
ExperimentSpec AblationWritePolicy() {
  ExperimentSpec spec;
  spec.name = "ablation_write_policy";
  spec.title = "Ablation — write-through vs write-back (§3.10)";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  ParamAxis policy;
  policy.name = "policy";
  policy.params = {
      {"write-through", 0,
       [](testbed::TestbedConfig& cfg) { cfg.cache.write_back = false; }},
      {"write-back", 1,
       [](testbed::TestbedConfig& cfg) { cfg.cache.write_back = true; }}};
  spec.axes = {std::move(policy),
               NumericAxis("write_ratio", {0.10, 0.25, 0.50, 1.00},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.write_ratio = v;
                           })};
  spec.table_metrics = {"rx_mrps"};
  return spec;
}

// Ablation 3 — recirculation-port bandwidth: the single recirc port sets
// the orbit period and thus the wait time and request-table pressure.
ExperimentSpec AblationRecircBandwidth() {
  ExperimentSpec spec;
  spec.name = "ablation_recirc_bw";
  spec.title = "Ablation — recirculation-port bandwidth";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.axes = {NumericAxis("recirc_gbps", {10, 25, 50, 100},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.topo.asic.recirc_rate_gbps = v;
                           })};
  spec.table_metrics = {"rx_mrps", "overflow_ratio", "read_cached.p99_us"};
  return spec;
}

// §2.2 design rationale: the strawman the paper argues against reads large
// values by recirculating the *request* once per 64B slice, so the single
// internal port caps cache-hit throughput; OrbitCache pays one pass per
// serve and keeps a constant packet ring. A tiny all-hot key space makes
// the switch itself the bottleneck.
ExperimentSpec RationaleRequestRecirc() {
  ExperimentSpec spec;
  spec.name = "rationale_request_recirc";
  spec.title =
      "§2.2 rationale — request recirculation vs circulating cache packets";
  spec.apply_paper_scale = false;
  spec.base.topo.num_clients = 4;
  spec.base.topo.num_servers = 8;
  spec.base.topo.server_rate_rps = 100'000;
  spec.base.topo.client_rate_rps = 12'000'000;  // drive the switch, not servers
  spec.base.workload.num_keys = 32;                 // everything cacheable and cached
  spec.base.workload.zipf_theta = 0.0;              // spread load across all hot keys
  spec.base.cache.orbit_cache_size = 32;
  spec.base.cache.netcache_size = 32;
  spec.base.warmup = 30 * kMillisecond;
  spec.base.duration = 100 * kMillisecond;
  spec.scale_fn = [](testbed::TestbedConfig& cfg, harness::Scale scale) {
    if (scale == harness::Scale::kQuick) {
      cfg.warmup = 10 * kMillisecond;
      cfg.duration = 40 * kMillisecond;
    }
  };
  ParamAxis variant;
  variant.name = "variant";
  variant.params = {
      {"request-recirc", 0,
       [](testbed::TestbedConfig& cfg) {
         cfg.scheme = testbed::Scheme::kNetCache;
         cfg.cache.netcache_recirc_read = true;
       }},
      {"OrbitCache", 1,
       [](testbed::TestbedConfig& cfg) {
         cfg.scheme = testbed::Scheme::kOrbitCache;
       }}};
  spec.axes = {NumericAxis("value_size", {64, 256, 1024},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.value_dist =
                                 wl::ValueDist::Fixed(static_cast<uint32_t>(v));
                           }),
               std::move(variant)};
  spec.run = harness::FixedLoadRun();
  spec.table_metrics = {"rx_mrps", "read_cached.p50_us",
                        "read_cached.p99_us"};
  spec.epilogue = [](const std::vector<MetricsRecord>&) {
    std::printf("request-recirc pays ceil(len/64)-1 recirculation passes per "
                "hit, so latency and recirc-port load grow with value size "
                "and offered load; OrbitCache's ring is constant.\n");
  };
  return spec;
}

// Extra: impact of key size (the figure §5.3 omits). One byte past the 16B
// match-key width and NetCache cannot install a single entry; OrbitCache
// matches on the key's hash and carries the key in the packet.
ExperimentSpec ExtraKeySize() {
  ExperimentSpec spec;
  spec.name = "extra_key_size";
  spec.title = "Extra — impact of key size (64B values)";
  spec.base.workload.value_dist = wl::ValueDist::Fixed(64);
  spec.axes = {NumericAxis("key_size", {16, 32, 64, 128},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.workload.key_size = static_cast<uint32_t>(v);
                           }),
               SchemeAxis({testbed::Scheme::kOrbitCache,
                           testbed::Scheme::kNetCache})};
  spec.table_metrics = {"rx_mrps", "cache_entries"};
  spec.epilogue = [](const std::vector<MetricsRecord>&) {
    std::printf("NetCache entry count collapses to 0 beyond 16B keys: the "
                "match-key width is burned into the ASIC.\n");
  };
  return spec;
}

// Extra: the three schemes on the classic YCSB core mixes — the workload
// shapes practitioners actually quote.
ExperimentSpec YcsbSuite() {
  ExperimentSpec spec;
  spec.name = "ycsb_suite";
  spec.title = "YCSB core mixes — saturated throughput (MRPS)";
  ParamAxis mixes;
  mixes.name = "mix";
  const auto& profiles = wl::YcsbCoreWorkloads();  // static storage
  for (size_t i = 0; i < profiles.size(); ++i) {
    const wl::YcsbProfile* p = &profiles[i];
    mixes.params.push_back({p->id, static_cast<double>(i),
                            [p](testbed::TestbedConfig& cfg) {
                              cfg.workload.zipf_theta = p->zipf_theta;
                              cfg.workload.write_ratio = p->write_ratio;
                            }});
  }
  spec.axes = {SchemeAxis(kAllSchemes), std::move(mixes)};
  spec.table_metrics = {"rx_mrps"};
  spec.epilogue = [](const std::vector<MetricsRecord>&) {
    std::printf("(D's read-latest skew and F's RMW are approximated within "
                "the open-loop model; see src/workload/ycsb.h)\n");
  };
  return spec;
}

ExperimentSpec FigFailures() {
  ExperimentSpec spec;
  spec.name = "fig_failures";
  spec.title = "Failures — collapse and recovery under injected faults (§3.9)";
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.base.topo.num_clients = 4;
  spec.base.topo.num_servers = 4;
  spec.base.topo.server_rate_rps = 100'000;
  // Above aggregate server capacity: the workload is only sustainable
  // while the cache absorbs the hot keys, so losing the cache (switch
  // reset) or a server (crash) collapses delivered throughput until the
  // controller rebuilds / the server returns.
  spec.base.topo.client_rate_rps = 450'000;
  spec.base.client.max_retries = 3;
  spec.base.client.request_timeout = 5 * kMillisecond;
  spec.scale_fn = [](testbed::TestbedConfig& cfg, harness::Scale scale) {
    cfg.warmup = 0;  // the full timeline is the result
    switch (scale) {
      case harness::Scale::kFull:
        cfg.duration = 3 * kSecond;
        cfg.timeline_bin = 50 * kMillisecond;
        break;
      case harness::Scale::kDefault:
        cfg.duration = 900 * kMillisecond;
        cfg.timeline_bin = 20 * kMillisecond;
        break;
      case harness::Scale::kQuick:
        cfg.duration = 300 * kMillisecond;
        cfg.timeline_bin = 10 * kMillisecond;
        break;
    }
  };
  // Builders run after scaling, so fault times track the scaled window:
  // the fault lands a third of the way in, leaving a pre-fault baseline
  // and room to observe recovery.
  spec.axes = {harness::FaultAxis(
      {{"switch-reset",
        [](testbed::TestbedConfig& cfg) {
          cfg.fault = fault::SwitchResetAt(cfg.duration / 3,
                                           /*rebuild_delay=*/cfg.duration / 20);
        }},
       {"server-crash", [](testbed::TestbedConfig& cfg) {
          cfg.fault = fault::ServerCrashAt(/*server=*/0, cfg.duration / 3,
                                           /*restart_at=*/2 * cfg.duration / 3);
        }}})};
  spec.run = [](const harness::PointRun& p, harness::SaturationCache&) {
    const testbed::TestbedResult res = testbed::RunTestbed(p.config);
    testbed::ResultMetricsOptions opts;
    opts.include_timelines = true;
    JsonValue metrics = testbed::ResultMetrics(res, opts);
    metrics.Set("window_s", static_cast<double>(p.config.duration) / kSecond);
    metrics.Set("timeline_bin_s",
                static_cast<double>(p.config.timeline_bin) / kSecond);

    // Recovery analysis on the throughput timeline. Baseline = mean of
    // the pre-fault bins (skipping bin 0's cold start); recovered = two
    // consecutive bins back at ≥ 90% of baseline.
    const SimTime bin = p.config.timeline_bin;
    const SimTime fault_at = p.config.fault.events.front().at;
    const size_t fault_bin = static_cast<size_t>(fault_at / bin);
    const auto& tl = res.throughput_timeline;
    double baseline = 0;
    size_t n_base = 0;
    for (size_t i = 1; i < fault_bin && i < tl.size(); ++i) {
      baseline += tl[i];
      ++n_base;
    }
    if (n_base > 0) baseline /= static_cast<double>(n_base);
    double min_tput = baseline;
    for (size_t i = fault_bin; i < tl.size(); ++i)
      min_tput = std::min(min_tput, tl[i]);
    double recovery_ms = -1;  // -1 = did not recover inside the window
    for (size_t i = fault_bin; i + 1 < tl.size(); ++i) {
      if (tl[i] >= 0.9 * baseline && tl[i + 1] >= 0.9 * baseline) {
        recovery_ms = static_cast<double>(static_cast<SimTime>(i + 1) * bin -
                                          fault_at) /
                      kMillisecond;
        break;
      }
    }
    metrics.Set("fault_at_ms", static_cast<double>(fault_at) / kMillisecond);
    metrics.Set("baseline_mrps", baseline / 1e6);
    metrics.Set("collapse_frac",
                baseline > 0 ? 1.0 - min_tput / baseline : 0.0);
    metrics.Set("recovery_ms", recovery_ms);
    return metrics;
  };
  spec.include_timelines = true;
  spec.table_metrics = {"rx_mrps", "collapse_frac", "recovery_ms",
                        "retransmissions", "timeouts", "faults_injected"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    for (const auto& r : rs) {
      if (!r.ok()) continue;
      const JsonValue* tl = r.metrics.Find("throughput_timeline_rps");
      const double bin_s = r.Metric("timeline_bin_s");
      if (tl == nullptr || !(bin_s > 0)) continue;
      const std::string recovery =
          r.Metric("recovery_ms") < 0
              ? "none"
              : std::to_string(static_cast<int>(r.Metric("recovery_ms"))) +
                    "ms";
      std::printf("  %s: fault at %.0fms, collapse %.0f%%, recovery %s\n",
                  r.params.empty() ? "?" : r.params[0].second.c_str(),
                  r.Metric("fault_at_ms"), 100 * r.Metric("collapse_frac"),
                  recovery.c_str());
      std::printf("  %8s %12s\n", "t(ms)", "rx(KRPS)");
      for (size_t i = 0; i < tl->array().size(); ++i)
        std::printf("  %8.0f %12.1f\n",
                    static_cast<double>(i) * bin_s * 1e3,
                    tl->array()[i].AsDouble() / 1e3);
    }
  };
  return spec;
}

ExperimentSpec FigFabric() {
  ExperimentSpec spec;
  spec.name = "fig_fabric";
  spec.title = "Fabric — scale-out throughput vs rack count and skew (§3.9)";
  // Per-rack building block: 8 storage servers behind one leaf, 2 clients,
  // and a one-rack offered load just above the rack's aggregate server
  // capacity (8 × 100K). FabricRackAxis grows servers, clients, and the
  // offered load proportionally, so every rack count starts its saturation
  // search from the same per-rack operating point.
  spec.base.topo.num_servers = 8;
  spec.base.topo.num_clients = 2;
  spec.base.topo.server_rate_rps = 100'000;
  spec.base.topo.client_rate_rps = 1'000'000;
  spec.base.cache.orbit_cache_size = 128;  // per leaf
  spec.axes = {SchemeAxis({testbed::Scheme::kNoCache,
                           testbed::Scheme::kOrbitCache}),
               harness::FabricRackAxis({2, 4, 8}, /*servers_per_rack=*/8,
                                       /*clients_per_rack=*/2),
               harness::NumericAxis("zipf_theta", {0.9, 0.99},
                                    [](testbed::TestbedConfig& cfg, double v) {
                                      cfg.workload.zipf_theta = v;
                                    })};
  spec.table_metrics = {"sat_tx_mrps", "rx_mrps", "read_p99_us",
                        "balancing_efficiency"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    // Scaling factor per (scheme, theta): throughput at the largest rack
    // count over the smallest. Near-linear scaling means the per-leaf
    // caches keep absorbing each rack's hot keys as the fabric grows.
    struct Group {
      std::string scheme, theta;
      double min_racks = 0, max_racks = 0, min_rx = 0, max_rx = 0;
    };
    std::vector<Group> groups;
    const auto param = [](const MetricsRecord& r, const char* name) {
      for (const auto& [k, v] : r.params)
        if (k == name) return v;
      return std::string();
    };
    for (const auto& r : rs) {
      if (!r.ok()) continue;
      const std::string scheme = param(r, "scheme");
      const std::string theta = param(r, "zipf_theta");
      const double racks = std::atof(param(r, "racks").c_str());
      const double rx = r.Metric("rx_mrps");
      Group* g = nullptr;
      for (auto& cand : groups)
        if (cand.scheme == scheme && cand.theta == theta) g = &cand;
      if (g == nullptr) {
        groups.push_back({scheme, theta, racks, racks, rx, rx});
        continue;
      }
      if (racks < g->min_racks) { g->min_racks = racks; g->min_rx = rx; }
      if (racks > g->max_racks) { g->max_racks = racks; g->max_rx = rx; }
    }
    for (const auto& g : groups) {
      if (g.min_rx <= 0 || g.max_racks <= g.min_racks) continue;
      std::printf("  %s theta=%s: %.0f -> %.0f racks, %.2f -> %.2f MRPS "
                  "(x%.2f)\n",
                  g.scheme.c_str(), g.theta.c_str(), g.min_racks, g.max_racks,
                  g.min_rx, g.max_rx, g.max_rx / g.min_rx);
    }
  };
  return spec;
}

ExperimentSpec FigFabricFailover() {
  ExperimentSpec spec;
  spec.name = "fig_fabric_failover";
  spec.title =
      "Fabric failover — collapse and recovery vs detection window (§3.9)";
  // Per-rack building block: 4 servers + 2 clients per rack (half of
  // fig_fabric's block, keeping the 8-rack timeline points affordable),
  // at a fixed offered load above each rack's aggregate server capacity
  // (4 × 100K): the workload is only sustainable while the per-leaf
  // caches absorb the hot keys, so a leaf crash collapses that rack's
  // delivered throughput until the survivors' top-up and the rebuild
  // land. Two spines with static addr%2 routing mean a spine crash
  // blackholes half of every rack's flows for exactly the failover
  // detection window — the collapse depth is the window made visible.
  spec.base.scheme = testbed::Scheme::kOrbitCache;
  spec.base.topo.num_servers = 4;
  spec.base.topo.num_clients = 2;
  spec.base.topo.server_rate_rps = 100'000;
  spec.base.topo.client_rate_rps = 500'000;
  spec.base.cache.orbit_cache_size = 128;  // per leaf
  spec.base.topo.fabric.num_spines = 2;
  spec.base.topo.fabric.failover = true;
  spec.base.topo.fabric.probe_interval = 100 * kMicrosecond;
  spec.base.client.max_retries = 3;
  spec.base.client.request_timeout = 5 * kMillisecond;
  spec.scale_fn = [](testbed::TestbedConfig& cfg, harness::Scale scale) {
    cfg.warmup = 0;  // the full timeline is the result
    switch (scale) {
      case harness::Scale::kFull:
        cfg.duration = 3 * kSecond;
        cfg.timeline_bin = 50 * kMillisecond;
        break;
      case harness::Scale::kDefault:
        cfg.duration = 900 * kMillisecond;
        cfg.timeline_bin = 20 * kMillisecond;
        break;
      case harness::Scale::kQuick:
        cfg.duration = 300 * kMillisecond;
        cfg.timeline_bin = 10 * kMillisecond;
        break;
    }
  };
  // Axis order: scenario (slowest) × detection window × rack count, so the
  // table groups each fault's window sweep per rack count. Fault builders
  // run after scaling and after the rack axis, so event times track the
  // scaled window and rack targets are always in range.
  spec.axes = {
      harness::FaultAxis(
          {{"spine-crash",
            [](testbed::TestbedConfig& cfg) {
              cfg.fault = fault::SpineCrashAt(/*spine=*/1, cfg.duration / 3,
                                              /*restart_at=*/2 * cfg.duration /
                                                  3);
            }},
           {"leaf-crash",
            [](testbed::TestbedConfig& cfg) {
              cfg.fault = fault::LeafCrashAt(
                  /*rack=*/0, cfg.duration / 3,
                  /*restart_at=*/2 * cfg.duration / 3,
                  /*rebuild_delay=*/cfg.duration / 20);
            }}}),
      harness::NumericAxis("detection_window_ms", {0.5, 2, 8},
                           [](testbed::TestbedConfig& cfg, double v) {
                             cfg.topo.fabric.detection_window =
                                 static_cast<SimTime>(v * kMillisecond);
                           }),
      harness::FabricRackAxis({2, 4, 8}, /*servers_per_rack=*/4,
                              /*clients_per_rack=*/2)};
  spec.run = [](const harness::PointRun& p, harness::SaturationCache&) {
    const testbed::TestbedResult res = testbed::RunTestbed(p.config);
    testbed::ResultMetricsOptions opts;
    opts.include_timelines = true;
    JsonValue metrics = testbed::ResultMetrics(res, opts);
    metrics.Set("window_s", static_cast<double>(p.config.duration) / kSecond);
    metrics.Set("timeline_bin_s",
                static_cast<double>(p.config.timeline_bin) / kSecond);

    // Recovery analysis on the throughput timeline, as in fig_failures but
    // with the acceptance threshold at 95% of the pre-fault baseline:
    // failover + degradation should restore ≥95% within the detection
    // window plus the rebuild delay. Baseline = mean of the pre-fault bins
    // (skipping bin 0's cold start); recovered = two consecutive bins back
    // at ≥95% of baseline.
    const SimTime bin = p.config.timeline_bin;
    const SimTime fault_at = p.config.fault.events.front().at;
    const size_t fault_bin = static_cast<size_t>(fault_at / bin);
    const auto& tl = res.throughput_timeline;
    double baseline = 0;
    size_t n_base = 0;
    for (size_t i = 1; i < fault_bin && i < tl.size(); ++i) {
      baseline += tl[i];
      ++n_base;
    }
    if (n_base > 0) baseline /= static_cast<double>(n_base);
    double min_tput = baseline;
    for (size_t i = fault_bin; i < tl.size(); ++i)
      min_tput = std::min(min_tput, tl[i]);
    double recovery_ms = -1;  // -1 = did not recover inside the window
    for (size_t i = fault_bin; i + 1 < tl.size(); ++i) {
      if (tl[i] >= 0.95 * baseline && tl[i + 1] >= 0.95 * baseline) {
        recovery_ms = static_cast<double>(static_cast<SimTime>(i + 1) * bin -
                                          fault_at) /
                      kMillisecond;
        break;
      }
    }
    metrics.Set("fault_at_ms", static_cast<double>(fault_at) / kMillisecond);
    metrics.Set("baseline_mrps", baseline / 1e6);
    metrics.Set("collapse_frac",
                baseline > 0 ? 1.0 - min_tput / baseline : 0.0);
    metrics.Set("recovery_ms", recovery_ms);
    return metrics;
  };
  spec.include_timelines = true;
  spec.table_metrics = {"rx_mrps",      "collapse_frac",      "recovery_ms",
                        "reroutes",     "blackholed_packets", "retransmissions",
                        "retries_exhausted"};
  spec.epilogue = [](const std::vector<MetricsRecord>& rs) {
    const auto param = [](const MetricsRecord& r, const char* name) {
      for (const auto& [k, v] : r.params)
        if (k == name) return v;
      return std::string();
    };
    for (const auto& r : rs) {
      if (!r.ok()) continue;
      const std::string recovery =
          r.Metric("recovery_ms") < 0
              ? "none"
              : std::to_string(static_cast<int>(r.Metric("recovery_ms"))) +
                    "ms";
      std::printf(
          "  %s window=%sms racks=%s: collapse %.0f%%, recovery %s, "
          "%" PRIu64 " reroutes, %" PRIu64 " blackholed\n",
          param(r, "fault").c_str(), param(r, "detection_window_ms").c_str(),
          param(r, "racks").c_str(), 100 * r.Metric("collapse_frac"),
          recovery.c_str(), static_cast<uint64_t>(r.Metric("reroutes")),
          static_cast<uint64_t>(r.Metric("blackholed_packets")));
    }
    std::printf("(spine-crash recovery rides the detection window: shorter "
                "windows reroute sooner and blackhole less; leaf-crash "
                "recovery adds the controller's rebuild delay)\n");
  };
  return spec;
}

std::vector<harness::ExperimentSpec> AllExperiments() {
  return {MotivationCacheability(),
          Fig09Skewness(),
          Fig10ServerLoads(),
          Fig11LatencyThroughput(),
          Fig12WriteRatio(),
          Fig13Scalability(),
          Fig14Production(),
          Fig15LatencyBreakdown(),
          Fig16CacheSize(),
          Fig17ItemSize(),
          Fig17EffectiveSize(),
          Fig18Dynamic(),
          AblationCloning(),
          AblationQueueDepth(),
          AblationWritePolicy(),
          AblationRecircBandwidth(),
          RationaleRequestRecirc(),
          ExtraKeySize(),
          YcsbSuite(),
          // Appended last so earlier experiments keep their record slots
          // in existing baselines.
          FigFailures(),
          FigFabric(),
          FigFabricFailover()};
}

}  // namespace orbit::benchexp
